// Fixture: `auto` locals that either don't alias a hash table, or whose
// iteration is suppressed with a documented invariant. Expect: clean.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Index {
  std::unordered_map<uint64_t, uint64_t> counts;
  std::vector<uint64_t> sorted_shapes;
};

uint64_t Emit(const Index& index) {
  uint64_t total = 0;
  // Binding a vector through auto stays ordered — no finding.
  const auto& shapes = index.sorted_shapes;
  for (uint64_t shape : shapes) total += shape;
  // Aliasing the hash table is fine when the fold is commutative and the
  // suppression says so.
  const auto& live = index.counts;
  for (const auto& [shape, count] : live) total += count;  // chase-lint: allow(unordered-iter) commutative fold: a sum
  return total;
}

std::vector<uint64_t> Sorted(const Index& index) {
  const auto& live = index.counts;
  std::vector<uint64_t> out;
  out.reserve(live.size());
  // chase-lint: allow(unordered-iter) sorted before emit: std::sort below
  for (const auto& [shape, count] : live) out.push_back(shape);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace fixture
