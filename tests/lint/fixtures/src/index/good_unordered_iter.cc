// Fixture: unordered iteration done right — suppressed with a documented
// invariant, or not iterated at all. Expect: clean.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Index {
  std::unordered_map<uint64_t, uint64_t> counts;
};

std::vector<uint64_t> SortedShapes(const Index& index) {
  std::vector<uint64_t> shapes;
  shapes.reserve(index.counts.size());
  // chase-lint: allow(unordered-iter) sorted before emit: std::sort below,
  // and the reason may wrap onto a continuation comment line like this one
  for (const auto& [shape, count] : index.counts) shapes.push_back(shape);
  std::sort(shapes.begin(), shapes.end());
  return shapes;
}

uint64_t Total(const Index& index) {
  uint64_t total = 0;
  for (const auto& [shape, count] : index.counts) total += count;  // chase-lint: allow(unordered-iter) commutative fold: a sum
  return total;
}

}  // namespace fixture
