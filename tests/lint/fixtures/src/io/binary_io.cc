// Fixture: the envelope helpers' own home — magics are defined here.
// Expect: clean.
#include <fstream>

namespace fixture {

constexpr char kSnapshotMagic[] = "CHSI";  // fine: this IS io/binary_io
constexpr char kCheckMagic[] = "CHCK";

void WriteMagic(std::ofstream& out) { out << kSnapshotMagic; }

}  // namespace fixture
