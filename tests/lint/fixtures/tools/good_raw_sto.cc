// Fixture: validated numeric parsing — strtoull with errno and end-pointer
// checks, the ParseU64Flag idiom. Expect: clean.
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>

namespace fixture {

std::optional<uint64_t> ParseU64(const std::string& value) {
  if (value.empty() || value[0] == '-') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end == value.c_str() || *end != '\0') {
    return std::nullopt;
  }
  return parsed;
}

}  // namespace fixture
