#!/usr/bin/env python3
"""Golden-fixture test for tools/lint/chase_lint.py.

Each fixture under tests/lint/fixtures mirrors the repo layout (the linter
scopes rules by path relative to --root, so a fixture at src/index/foo.cc
is linted as a canonical-output file). bad_* fixtures must produce exactly
the expected rule ids; good_* fixtures and the sanctioned-home fixtures
must come back clean. A final case checks that directory walks skip the
fixture tree, so the repo-wide lint gate stays green despite the known-bad
snippets parked here.

Usage: lint_test.py  (paths are inferred from this file's location)
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.abspath(os.path.join(HERE, "..", ".."))
LINTER = os.path.join(REPO, "tools", "lint", "chase_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")

# fixture path (relative to the fixture root) -> multiset of expected rule
# ids, one entry per expected finding. Empty list = must be clean.
CASES = {
    os.path.join("src", "index", "bad_unordered_iter.cc"):
        ["unordered-iter", "unordered-iter"],
    os.path.join("src", "index", "good_unordered_iter.cc"): [],
    os.path.join("src", "index", "bad_unordered_auto.cc"):
        ["unordered-iter", "unordered-iter"],
    os.path.join("src", "index", "good_unordered_auto.cc"): [],
    os.path.join("src", "core", "bad_nondet.cc"):
        ["banned-nondet"] * 5,
    os.path.join("src", "base", "rng.h"): [],
    os.path.join("src", "chase", "bad_raw_sto.cc"):
        ["raw-sto", "raw-sto"],
    os.path.join("tools", "good_raw_sto.cc"): [],
    os.path.join("src", "core", "bad_naked_thread.cc"):
        ["naked-thread", "naked-thread"],
    os.path.join("src", "exec", "frontier_pool.cc"): [],
    os.path.join("src", "core", "bad_envelope.cc"): ["envelope-io"],
    os.path.join("src", "io", "binary_io.cc"): [],
    os.path.join("src", "index", "bad_bare_allow.cc"): ["bare-allow"],
    # One registration outside the shim + stdio/malloc/free in the body.
    os.path.join("src", "core", "bad_signal.cc"):
        ["signal-handler"] * 4,
    os.path.join("src", "base", "signal_flag.cc"): [],
}


def run_linter(args):
    proc = subprocess.run(
        [sys.executable, LINTER] + args,
        capture_output=True, text=True, check=False)
    rules = []
    for line in proc.stdout.splitlines():
        # "path:line: [rule] message"
        if "] " in line and "[" in line:
            rules.append(line.split("[", 1)[1].split("]", 1)[0])
    return proc.returncode, sorted(rules), proc.stdout + proc.stderr


def main():
    failures = []
    for relpath, expected in sorted(CASES.items()):
        fixture = os.path.join(FIXTURES, relpath)
        if not os.path.isfile(fixture):
            failures.append(f"{relpath}: fixture file missing")
            continue
        code, rules, output = run_linter(
            ["--root", FIXTURES, fixture])
        want_code = 1 if expected else 0
        if code != want_code:
            failures.append(
                f"{relpath}: exit {code}, want {want_code}\n{output}")
        if rules != sorted(expected):
            failures.append(
                f"{relpath}: findings {rules}, want {sorted(expected)}\n"
                f"{output}")

    # Directory walks must skip the fixture tree: linting the enclosing
    # tests/ directory of the real repo stays clean even though it contains
    # every known-bad snippet above.
    code, rules, output = run_linter(
        ["--root", REPO, os.path.join(REPO, "tests")])
    if code != 0 or rules:
        failures.append(
            f"tests/ walk should skip fixtures but found {rules} "
            f"(exit {code})\n{output}")

    # A usage error (nonexistent path) is exit 2, distinct from findings.
    code, _, _ = run_linter([os.path.join(FIXTURES, "no_such_file.cc")])
    if code != 2:
        failures.append(f"nonexistent path: exit {code}, want 2")

    if failures:
        print("lint_test: FAILED")
        for failure in failures:
            print(" -", failure)
        return 1
    print(f"lint_test: OK ({len(CASES)} fixtures + walk/usage checks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
