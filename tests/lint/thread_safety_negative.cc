// Negative-compilation probe for the base/sync.h annotations: under clang
// with -Werror=thread-safety this file must FAIL to compile when
// CHASE_NEGATIVE_UNGUARDED is defined (an unguarded read of a GUARDED_BY
// field) and must compile cleanly without it (the same read under a
// MutexLock). The cmake/thread_safety_negative.cmake harness compiles it
// both ways; the passing control proves a failure means "the analysis
// caught the bug", not "the harness is broken".
//
// Built standalone by that harness, never part of the chase library.

#include "base/sync.h"

namespace {

class Counter {
 public:
  void Increment() {
    chase::MutexLock lock(mu_);
    ++value_;
  }

  int Read() const {
#ifdef CHASE_NEGATIVE_UNGUARDED
    return value_;  // unguarded: -Wthread-safety must reject this
#else
    chase::MutexLock lock(mu_);
    return value_;
#endif
  }

 private:
  mutable chase::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return counter.Read() == 1 ? 0 : 1;
}
