#include <gtest/gtest.h>

#include "logic/atom.h"
#include "logic/database.h"
#include "logic/schema.h"
#include "logic/symbols.h"
#include "logic/term.h"
#include "logic/tgd.h"

namespace chase {
namespace {

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable table;
  const uint32_t a = table.Intern("alpha");
  const uint32_t b = table.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.Intern("alpha"), a);
  EXPECT_EQ(table.NameOf(a), "alpha");
  EXPECT_EQ(table.NameOf(b), "beta");
  EXPECT_EQ(table.size(), 2u);
}

TEST(SymbolTableTest, FindMissing) {
  SymbolTable table;
  EXPECT_FALSE(table.Find("nope").has_value());
  table.Intern("yes");
  EXPECT_TRUE(table.Find("yes").has_value());
}

TEST(TermTest, TaggedRepresentation) {
  const Term c = MakeConstant(7);
  const Term n = MakeNull(7);
  EXPECT_TRUE(IsConstant(c));
  EXPECT_FALSE(IsNull(c));
  EXPECT_TRUE(IsNull(n));
  EXPECT_FALSE(IsConstant(n));
  EXPECT_EQ(ConstantId(c), 7u);
  EXPECT_EQ(NullId(n), 7u);
  EXPECT_NE(c, n);
}

TEST(SchemaTest, AddAndLookup) {
  Schema schema;
  auto r = schema.AddPredicate("r", 2);
  ASSERT_TRUE(r.ok());
  auto s = schema.AddPredicate("s", 3);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(schema.NumPredicates(), 2u);
  EXPECT_EQ(schema.Arity(r.value()), 2u);
  EXPECT_EQ(schema.Arity(s.value()), 3u);
  EXPECT_EQ(schema.PredicateName(r.value()), "r");
  EXPECT_EQ(schema.FindPredicate("s"), s.value());
  EXPECT_FALSE(schema.FindPredicate("t").has_value());
  EXPECT_EQ(schema.MaxArity(), 3u);
}

TEST(SchemaTest, RejectsDuplicatesAndZeroArity) {
  Schema schema;
  ASSERT_TRUE(schema.AddPredicate("r", 2).ok());
  EXPECT_EQ(schema.AddPredicate("r", 2).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(schema.AddPredicate("z", 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, RejectsAritiesPastTheSupportedMaximum) {
  // Arities beyond kMaxArity would overflow the uint8_t id-tuple encoding
  // and the EXISTS-probe scratch tables; the schema is the choke point.
  Schema schema;
  ASSERT_TRUE(schema.AddPredicate("wide", Schema::kMaxArity).ok());
  EXPECT_EQ(
      schema.AddPredicate("wider", Schema::kMaxArity + 1).status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(schema.GetOrAddPredicate("widest", 100'000).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, GetOrAddChecksArity) {
  Schema schema;
  auto r1 = schema.GetOrAddPredicate("r", 2);
  ASSERT_TRUE(r1.ok());
  auto r2 = schema.GetOrAddPredicate("r", 2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value(), r2.value());
  EXPECT_EQ(schema.GetOrAddPredicate("r", 3).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, PositionEncodingRoundTrips) {
  Schema schema;
  const PredId r = schema.AddPredicate("r", 2).value();
  const PredId s = schema.AddPredicate("s", 3).value();
  const PredId t = schema.AddPredicate("t", 1).value();
  EXPECT_EQ(schema.NumPositions(), 6u);
  // Dense ids are contiguous and unique.
  std::vector<bool> seen(schema.NumPositions(), false);
  for (PredId pred : {r, s, t}) {
    for (uint32_t i = 0; i < schema.Arity(pred); ++i) {
      const uint32_t id = schema.PositionId(pred, i);
      ASSERT_LT(id, schema.NumPositions());
      EXPECT_FALSE(seen[id]);
      seen[id] = true;
      const Position position = schema.PositionFromId(id);
      EXPECT_EQ(position.pred, pred);
      EXPECT_EQ(position.index, i);
    }
  }
}

TEST(RuleAtomTest, PositionsOfAndDistinctness) {
  RuleAtom atom(0, {0, 1, 0, 2});
  EXPECT_EQ(atom.PositionsOf(0), (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(atom.PositionsOf(1), (std::vector<uint32_t>{1}));
  EXPECT_TRUE(atom.PositionsOf(9).empty());
  EXPECT_FALSE(atom.HasDistinctVars());
  EXPECT_TRUE(RuleAtom(0, {0, 1, 2}).HasDistinctVars());
  EXPECT_TRUE(RuleAtom(0, {5}).HasDistinctVars());
}

TEST(TgdTest, CreateNormalizesVariables) {
  // body r(7, 3), head s(3, 99) with 99 head-only: renumber to
  // universals {7->0, 3->1}, existential {99->2}.
  auto tgd = Tgd::Create({RuleAtom(0, {7, 3})}, {RuleAtom(1, {3, 99})});
  ASSERT_TRUE(tgd.ok());
  EXPECT_EQ(tgd->num_vars(), 3u);
  EXPECT_EQ(tgd->num_universal(), 2u);
  EXPECT_EQ(tgd->num_existential(), 1u);
  EXPECT_EQ(tgd->body()[0].args, (std::vector<VarId>{0, 1}));
  EXPECT_EQ(tgd->head()[0].args, (std::vector<VarId>{1, 2}));
  EXPECT_TRUE(tgd->IsUniversal(0));
  EXPECT_TRUE(tgd->IsUniversal(1));
  EXPECT_TRUE(tgd->IsExistential(2));
}

TEST(TgdTest, FrontierComputation) {
  // r(x, y) -> s(y, z): frontier = {y}.
  auto tgd = Tgd::Create({RuleAtom(0, {0, 1})}, {RuleAtom(1, {1, 2})});
  ASSERT_TRUE(tgd.ok());
  EXPECT_EQ(tgd->frontier(), (std::vector<VarId>{1}));
  EXPECT_TRUE(tgd->HasNonEmptyFrontier());
  EXPECT_FALSE(tgd->InFrontier(0));
  EXPECT_TRUE(tgd->InFrontier(1));
}

TEST(TgdTest, EmptyFrontierDetected) {
  // r(x) -> s(z): no shared variable.
  auto tgd = Tgd::Create({RuleAtom(0, {0})}, {RuleAtom(1, {5})});
  ASSERT_TRUE(tgd.ok());
  EXPECT_FALSE(tgd->HasNonEmptyFrontier());
  EXPECT_TRUE(tgd->frontier().empty());
}

TEST(TgdTest, LinearityClassification) {
  auto linear = Tgd::Create({RuleAtom(0, {0, 0})}, {RuleAtom(1, {0})});
  ASSERT_TRUE(linear.ok());
  EXPECT_TRUE(linear->IsLinear());
  EXPECT_FALSE(linear->IsSimpleLinear());

  auto simple = Tgd::Create({RuleAtom(0, {0, 1})}, {RuleAtom(1, {0, 0})});
  ASSERT_TRUE(simple.ok());
  EXPECT_TRUE(simple->IsSimpleLinear());  // head repetition is allowed

  auto multi = Tgd::Create({RuleAtom(0, {0}), RuleAtom(1, {0})},
                           {RuleAtom(1, {0, 1})});
  ASSERT_TRUE(multi.ok());
  EXPECT_FALSE(multi->IsLinear());
  EXPECT_FALSE(multi->IsSimpleLinear());
}

TEST(TgdTest, RejectsEmptyBodyOrHead) {
  EXPECT_FALSE(Tgd::Create({}, {RuleAtom(0, {0})}).ok());
  EXPECT_FALSE(Tgd::Create({RuleAtom(0, {0})}, {}).ok());
  EXPECT_FALSE(Tgd::Create({RuleAtom(0, {})}, {RuleAtom(1, {0})}).ok());
}

TEST(TgdTest, ClassPredicatesOverSets) {
  auto sl = Tgd::Create({RuleAtom(0, {0, 1})}, {RuleAtom(0, {1, 2})});
  auto l = Tgd::Create({RuleAtom(0, {0, 0})}, {RuleAtom(0, {0, 1})});
  ASSERT_TRUE(sl.ok());
  ASSERT_TRUE(l.ok());
  std::vector<Tgd> both = {sl.value(), l.value()};
  EXPECT_TRUE(AllLinear(both));
  EXPECT_FALSE(AllSimpleLinear(both));
  EXPECT_TRUE(AllSimpleLinear({sl.value()}));
  EXPECT_TRUE(AllHaveNonEmptyFrontier(both));
}

TEST(DatabaseTest, AddAndQueryFacts) {
  Schema schema;
  const PredId r = schema.AddPredicate("r", 2).value();
  const PredId s = schema.AddPredicate("s", 1).value();
  Database db(&schema);
  const uint32_t a = db.InternConstant("a");
  const uint32_t b = db.InternConstant("b");
  ASSERT_TRUE(db.AddFact(r, std::vector<uint32_t>{a, b}).ok());
  ASSERT_TRUE(db.AddFact(r, std::vector<uint32_t>{b, b}).ok());
  EXPECT_EQ(db.NumTuples(r), 2u);
  EXPECT_EQ(db.NumTuples(s), 0u);
  EXPECT_TRUE(db.IsEmpty(s));
  EXPECT_FALSE(db.IsEmpty(r));
  EXPECT_EQ(db.TotalFacts(), 2u);
  EXPECT_EQ(db.NonEmptyPredicates(), (std::vector<PredId>{r}));
  auto row = db.Tuple(r, 1);
  EXPECT_EQ(row[0], b);
  EXPECT_EQ(row[1], b);
  EXPECT_EQ(db.ConstantName(a), "a");
}

TEST(DatabaseTest, RejectsArityMismatchAndUnknownPredicate) {
  Schema schema;
  const PredId r = schema.AddPredicate("r", 2).value();
  Database db(&schema);
  EXPECT_EQ(db.AddFact(r, std::vector<uint32_t>{1}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.AddFact(99, std::vector<uint32_t>{1, 2}).code(),
            StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, AnonymousDomain) {
  Schema schema;
  const PredId r = schema.AddPredicate("r", 1).value();
  Database db(&schema);
  db.EnsureAnonymousDomain(100);
  EXPECT_EQ(db.NumConstants(), 100u);
  ASSERT_TRUE(db.AddFact(r, std::vector<uint32_t>{42}).ok());
  EXPECT_EQ(db.ConstantName(42), "c42");
}

TEST(GroundAtomTest, EqualityAndHash) {
  GroundAtom a(0, {MakeConstant(1), MakeNull(2)});
  GroundAtom b(0, {MakeConstant(1), MakeNull(2)});
  GroundAtom c(0, {MakeConstant(1), MakeConstant(2)});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  GroundAtomHash hash;
  EXPECT_EQ(hash(a), hash(b));
}

}  // namespace
}  // namespace chase
