#include <gtest/gtest.h>

#include "core/materialization_checker.h"
#include "logic/parser.h"

namespace chase {
namespace {

Program MustParse(const std::string& text) {
  auto program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(program).value();
}

TEST(ChaseSizeBoundTest, GrowsWithInputs) {
  Program small = MustParse("r(a,b).\nr(X,Y) -> s(X).");
  Program large = MustParse(
      "r(a,b). r(c,d). r(e,f).\n"
      "r(X,Y) -> s(X).\n"
      "s(X) -> t(X,X,X).");
  EXPECT_GT(ChaseSizeBound(*large.database, large.tgds),
            ChaseSizeBound(*small.database, small.tgds));
}

TEST(ChaseSizeBoundTest, SaturatesInsteadOfOverflowing) {
  std::string rule = "r(A,B,C,D,E) -> s(A,B,C,D,E).\n";
  std::string text = "r(a,b,c,d,e).\n";
  for (int i = 0; i < 5; ++i) text += rule;
  Program p = MustParse(text);
  EXPECT_EQ(ChaseSizeBound(*p.database, p.tgds), UINT64_MAX);
}

TEST(MaterializationCheckTest, DecidesFiniteByFixpoint) {
  Program p = MustParse(R"(
    emp(a). emp(b).
    emp(X) -> rep(X, Z).
    rep(X, Y) -> emp(X).
  )");
  auto report = MaterializationCheck(*p.database, p.tgds);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->decided);
  EXPECT_TRUE(report->finite);
  EXPECT_EQ(report->outcome, ChaseOutcome::kFixpoint);
  EXPECT_EQ(report->atoms, 4u);  // emp(a), emp(b), rep(a,_), rep(b,_)
}

TEST(MaterializationCheckTest, DecidesInfiniteByExceedingBound) {
  // Tiny bound environment: one fact, one rule, positions = 4 -> the bound
  // is small enough to exceed quickly.
  Program p = MustParse("e(a,b).\ne(X,Y) -> e(Y,Z).");
  auto report = MaterializationCheck(*p.database, p.tgds);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->decided);
  EXPECT_FALSE(report->finite);
  EXPECT_EQ(report->outcome, ChaseOutcome::kAtomLimit);
  EXPECT_GT(report->atoms, report->bound);
}

TEST(MaterializationCheckTest, UndecidedWhenBudgetBelowBound) {
  Program p = MustParse("e(a,b).\ne(X,Y) -> e(Y,Z).");
  MaterializationOptions options;
  options.atom_budget = 3;  // below the bound
  auto report = MaterializationCheck(*p.database, p.tgds, options);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->decided);
}

TEST(MaterializationCheckTest, BudgetAboveBoundStillDecides) {
  Program p = MustParse("e(a,b).\ne(X,Y) -> e(Y,Z).");
  MaterializationOptions options;
  options.atom_budget = ChaseSizeBound(*p.database, p.tgds) + 100;
  auto report = MaterializationCheck(*p.database, p.tgds, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->decided);
  EXPECT_FALSE(report->finite);
}

TEST(MaterializationCheckTest, EmptyDatabase) {
  Program p = MustParse("e(X,Y) -> e(Y,Z).");
  auto report = MaterializationCheck(*p.database, p.tgds);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->decided);
  EXPECT_TRUE(report->finite);
  EXPECT_EQ(report->atoms, 0u);
}

}  // namespace
}  // namespace chase
