#include <string>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "chase/chase_engine.h"
#include "core/is_chase_finite.h"
#include "core/normalize.h"
#include "logic/parser.h"

namespace chase {
namespace {

Program MustParse(const std::string& text) {
  auto program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(program).value();
}

TEST(NormalizeTest, NonEmptyFrontiersPassThrough) {
  Program p = MustParse("r(a, b).\nr(X, Y) -> s(Y, Z).\ns(X, Y) -> r(X, Y).");
  auto normalized = NormalizeFrontiers(*p.database, p.tgds);
  ASSERT_TRUE(normalized.ok());
  EXPECT_EQ(normalized->rules_materialized, 0u);
  EXPECT_EQ(normalized->rules_dropped, 0u);
  EXPECT_EQ(normalized->tgds, p.tgds);
  EXPECT_EQ(normalized->database->TotalFacts(), p.database->TotalFacts());
}

TEST(NormalizeTest, ApplicableEmptyFrontierRuleIsMaterializedOnce) {
  // r(X, Y) → ∃Z s(Z) fires exactly once in the semi-oblivious chase; the
  // normalized database holds its one output and the rule disappears.
  Program p = MustParse("r(a, b).\nr(X, Y) -> s(Z).");
  ASSERT_FALSE(p.tgds[0].HasNonEmptyFrontier());
  auto normalized = NormalizeFrontiers(*p.database, p.tgds);
  ASSERT_TRUE(normalized.ok()) << normalized.status();
  EXPECT_EQ(normalized->rules_materialized, 1u);
  EXPECT_TRUE(normalized->tgds.empty());
  auto s = p.schema->FindPredicate("s");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(normalized->database->NumTuples(*s), 1u);
}

TEST(NormalizeTest, InapplicableRuleIsDroppedWithoutMaterialization) {
  // r is empty, so the rule never fires.
  Program p = MustParse("q(a).\nr(X, Y) -> s(Z).");
  auto normalized = NormalizeFrontiers(*p.database, p.tgds);
  ASSERT_TRUE(normalized.ok());
  EXPECT_EQ(normalized->rules_dropped, 1u);
  EXPECT_EQ(normalized->rules_materialized, 0u);
  auto s = p.schema->FindPredicate("s");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(normalized->database->NumTuples(*s), 0u);
}

TEST(NormalizeTest, RepeatedVariableBodyNeedsMatchingShape) {
  // r(X, X) only matches facts with equal arguments; r(a, b) does not
  // support it, r(c, c) does.
  Program without = MustParse("r(a, b).\nr(X, X) -> s(Z).");
  auto n1 = NormalizeFrontiers(*without.database, without.tgds);
  ASSERT_TRUE(n1.ok());
  EXPECT_EQ(n1->rules_dropped, 1u);

  Program with = MustParse("r(c, c).\nr(X, X) -> s(Z).");
  auto n2 = NormalizeFrontiers(*with.database, with.tgds);
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(n2->rules_materialized, 1u);
}

TEST(NormalizeTest, ChainedEmptyFrontierRulesMaterializeTogether) {
  // σ2 is applicable only through σ1's output.
  Program p = MustParse("r(a, b).\nr(X, Y) -> s(Z).\ns(U) -> t(V).");
  auto normalized = NormalizeFrontiers(*p.database, p.tgds);
  ASSERT_TRUE(normalized.ok());
  EXPECT_EQ(normalized->rules_materialized, 2u);
  auto t = p.schema->FindPredicate("t");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(normalized->database->NumTuples(*t), 1u);
}

TEST(NormalizeTest, SharedExistentialAcrossHeadAtomsUsesOneConstant) {
  Program p = MustParse("r(a, b).\nr(X, Y) -> s(Z), t(Z, W).");
  auto normalized = NormalizeFrontiers(*p.database, p.tgds);
  ASSERT_TRUE(normalized.ok());
  auto s = p.schema->FindPredicate("s");
  auto t = p.schema->FindPredicate("t");
  ASSERT_TRUE(s.has_value() && t.has_value());
  ASSERT_EQ(normalized->database->NumTuples(*s), 1u);
  ASSERT_EQ(normalized->database->NumTuples(*t), 1u);
  // The Z in s(Z) and t(Z, W) is the same constant; W is different.
  const auto s_tuple = normalized->database->Tuple(*s, 0);
  const auto t_tuple = normalized->database->Tuple(*t, 0);
  EXPECT_EQ(s_tuple[0], t_tuple[0]);
  EXPECT_NE(t_tuple[0], t_tuple[1]);
}

TEST(NormalizeTest, CheckersAcceptNormalizedSets) {
  Program p = MustParse("r(a, b).\nr(X, Y) -> s(Z).");
  auto rejected = IsChaseFiniteL(*p.database, p.tgds);
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);

  auto normalized = NormalizeFrontiers(*p.database, p.tgds);
  ASSERT_TRUE(normalized.ok());
  // No rules remain: trivially finite (and the checker, run on any
  // remaining rules, accepts the normalized set).
  EXPECT_TRUE(normalized->tgds.empty());
}

TEST(NormalizeTest, NoFalseDivergenceFromOneShotRules) {
  // Regression for the naive "make a body variable frontier" rewriting:
  // the one-shot rule's output feeds r, but the rule must NOT re-fire on
  // the value it produced. The chase is finite and normalization must
  // agree.
  Program p = MustParse("r(a, b).\nr(X, Y) -> s(Z).\ns(U) -> r(U, U).");
  ChaseOptions options;
  options.max_atoms = 10'000;
  auto chased = RunChase(*p.database, p.tgds, options);
  ASSERT_TRUE(chased.ok());
  ASSERT_EQ(chased->outcome, ChaseOutcome::kFixpoint);

  auto normalized = NormalizeFrontiers(*p.database, p.tgds);
  ASSERT_TRUE(normalized.ok());
  auto finite = IsChaseFiniteL(*normalized->database, normalized->tgds);
  ASSERT_TRUE(finite.ok()) << finite.status();
  EXPECT_TRUE(finite.value());
}

TEST(NormalizeTest, PreservesInfiniteness) {
  // The one-shot rule seeds a genuinely diverging rule through s.
  Program p = MustParse(R"(
    r(a, b).
    r(X, Y) -> s(Z).
    s(X) -> t(X, W).
    t(X, W) -> t(W, V).
  )");
  auto normalized = NormalizeFrontiers(*p.database, p.tgds);
  ASSERT_TRUE(normalized.ok());
  auto finite = IsChaseFiniteL(*normalized->database, normalized->tgds);
  ASSERT_TRUE(finite.ok()) << finite.status();
  EXPECT_FALSE(finite.value());
}

TEST(NormalizeTest, NonLinearRejected) {
  Program p = MustParse("r(X, Y), q(Y) -> s(Z).");
  auto normalized = NormalizeFrontiers(*p.database, p.tgds);
  EXPECT_EQ(normalized.status().code(), StatusCode::kInvalidArgument);
}

// Property: the checker verdict on the normalized input matches the bounded
// chase oracle run on the ORIGINAL rule set.
TEST(NormalizeTest, EquivalentToOriginalChaseOnRandomLinearSets) {
  Rng rng(20240612);
  int rewritten_sets = 0;
  for (int trial = 0; trial < 200; ++trial) {
    // Hand-rolled generator that, unlike gen/, emits empty frontiers often:
    // each head position is existential with probability 1/2.
    Program p;
    const uint32_t num_preds = 2 + static_cast<uint32_t>(rng.Below(3));
    for (uint32_t i = 0; i < num_preds; ++i) {
      ASSERT_TRUE(p.schema
                      ->AddPredicate("p" + std::to_string(i),
                                     1 + static_cast<uint32_t>(rng.Below(2)))
                      .ok());
    }
    const uint32_t num_rules = 1 + static_cast<uint32_t>(rng.Below(3));
    bool any_rewrite_needed = false;
    for (uint32_t r = 0; r < num_rules; ++r) {
      const PredId body_pred = static_cast<PredId>(rng.Below(num_preds));
      const PredId head_pred = static_cast<PredId>(rng.Below(num_preds));
      const uint32_t body_arity = p.schema->Arity(body_pred);
      const uint32_t head_arity = p.schema->Arity(head_pred);
      std::vector<VarId> body_args(body_arity);
      for (uint32_t i = 0; i < body_arity; ++i) body_args[i] = i;
      std::vector<VarId> head_args(head_arity);
      bool has_frontier = false;
      for (uint32_t i = 0; i < head_arity; ++i) {
        if (rng.Below(100) < 50) {
          head_args[i] = static_cast<VarId>(rng.Below(body_arity));
          has_frontier = true;
        } else {
          head_args[i] = body_arity + i;  // existential
        }
      }
      any_rewrite_needed |= !has_frontier;
      auto tgd = Tgd::Create({RuleAtom(body_pred, body_args)},
                             {RuleAtom(head_pred, head_args)});
      ASSERT_TRUE(tgd.ok()) << tgd.status();
      p.tgds.push_back(std::move(tgd).value());
    }
    rewritten_sets += any_rewrite_needed;
    // One fact per predicate so every rule is reachable.
    p.database->EnsureAnonymousDomain(4);
    for (PredId pred = 0; pred < num_preds; ++pred) {
      std::vector<uint32_t> tuple(p.schema->Arity(pred));
      for (uint32_t i = 0; i < tuple.size(); ++i) tuple[i] = i;
      ASSERT_TRUE(p.database->AddFact(pred, tuple).ok());
    }

    auto normalized = NormalizeFrontiers(*p.database, p.tgds);
    ASSERT_TRUE(normalized.ok());
    auto verdict = IsChaseFiniteL(*normalized->database, normalized->tgds);
    ASSERT_TRUE(verdict.ok()) << verdict.status();

    // Oracle on the ORIGINAL rules.
    ChaseOptions options;
    options.max_atoms = 100'000;
    auto chased = RunChase(*p.database, p.tgds, options);
    ASSERT_TRUE(chased.ok());
    const bool oracle = chased->outcome == ChaseOutcome::kFixpoint;
    EXPECT_EQ(verdict.value(), oracle) << "trial " << trial;
  }
  // The generator must actually exercise the rewrite path.
  EXPECT_GT(rewritten_sets, 20);
}

}  // namespace
}  // namespace chase
