// The observability layer's own suite: the metrics registry (sharded
// counters and histograms under concurrent publication, gauges, the JSON
// dump), the trace recorder (wait-free concurrent Emit — this file runs in
// the ThreadSanitizer CI job —, overflow drop accounting, session
// filtering, and a golden check that the emitted artifact parses as JSON
// with well-formed span nesting), the progress reporter, and the
// end-to-end contract that matters most: a chase with tracing and metrics
// ON is bit-identical to the untraced serial run across the thread sweep.
//
// The JSON checks use the minimal recursive-descent parser below rather
// than eyeballing substrings: Perfetto and chrome://tracing are real
// consumers, so "parses as JSON with the documented structure" is the
// contract, not "contains these bytes".

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "chase/chase_engine.h"
#include "logic/parser.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace chase {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser: enough of RFC 8259 to validate the artifacts
// (objects, arrays, strings with escapes, numbers, booleans, null).

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool Has(const std::string& key) const { return object.count(key) > 0; }
  const JsonValue& At(const std::string& key) const {
    static const JsonValue kMissing;
    auto it = object.find(key);
    return it == object.end() ? kMissing : it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  // Parses the whole input; ok() reports success (trailing garbage fails).
  JsonValue Parse() {
    JsonValue value = ParseValue();
    SkipSpace();
    if (pos_ != text_.size()) ok_ = false;
    return value;
  }
  bool ok() const { return ok_; }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    ok_ = false;
    return false;
  }

  JsonValue ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      ok_ = false;
      return {};
    }
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseKeyword();
    if (c == 'n') return ParseKeyword();
    return ParseNumber();
  }

  JsonValue ParseObject() {
    JsonValue value;
    value.kind = JsonValue::kObject;
    Consume('{');
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return value;
    }
    while (ok_) {
      JsonValue key = ParseString();
      Consume(':');
      value.object[key.str] = ParseValue();
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      Consume('}');
      break;
    }
    return value;
  }

  JsonValue ParseArray() {
    JsonValue value;
    value.kind = JsonValue::kArray;
    Consume('[');
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return value;
    }
    while (ok_) {
      value.array.push_back(ParseValue());
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      Consume(']');
      break;
    }
    return value;
  }

  JsonValue ParseString() {
    JsonValue value;
    value.kind = JsonValue::kString;
    if (!Consume('"')) return value;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          pos_ += 4;  // \uXXXX — validation, not decoding
        } else {
          value.str.push_back(esc);
        }
        continue;
      }
      value.str.push_back(text_[pos_++]);
    }
    if (pos_ >= text_.size()) {
      ok_ = false;
      return value;
    }
    ++pos_;  // closing quote
    return value;
  }

  JsonValue ParseKeyword() {
    JsonValue value;
    auto match = [&](const char* word) {
      const size_t len = std::strlen(word);
      if (text_.compare(pos_, len, word) == 0) {
        pos_ += len;
        return true;
      }
      return false;
    };
    if (match("true")) {
      value.kind = JsonValue::kBool;
      value.boolean = true;
    } else if (match("false")) {
      value.kind = JsonValue::kBool;
    } else if (match("null")) {
      value.kind = JsonValue::kNull;
    } else {
      ok_ = false;
    }
    return value;
  }

  JsonValue ParseNumber() {
    JsonValue value;
    value.kind = JsonValue::kNumber;
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    value.number = std::strtod(start, &end);
    if (end == start) {
      ok_ = false;
      return value;
    }
    pos_ += static_cast<size_t>(end - start);
    return value;
  }

  const std::string& text_;
  size_t pos_ = 0;
  bool ok_ = true;
};

JsonValue MustParse(const std::string& text) {
  JsonParser parser(text);
  JsonValue value = parser.Parse();
  EXPECT_TRUE(parser.ok()) << "invalid JSON:\n" << text;
  return value;
}

// Every test runs against the process-global registry/recorder, so each
// starts from a clean, disabled slate.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::MetricsRegistry::SetEnabled(false);
    obs::MetricsRegistry::Get().Reset();
    obs::TraceRecorder::Get().Stop();
  }
  void TearDown() override {
    obs::MetricsRegistry::SetEnabled(false);
    obs::TraceRecorder::Get().Stop();
  }
};

// ---------------------------------------------------------------------------
// Metrics registry

TEST_F(ObsTest, CounterConcurrentAddsFold) {
  obs::MetricsRegistry::SetEnabled(true);
  obs::Counter* counter =
      obs::MetricsRegistry::Get().GetCounter("test.concurrent");
  constexpr unsigned kThreads = 8;
  constexpr uint64_t kAdds = 20'000;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([counter] {
      for (uint64_t i = 0; i < kAdds; ++i) obs::CounterAdd(counter, 1);
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(counter->Value(), kThreads * kAdds);
  counter->Reset();
  EXPECT_EQ(counter->Value(), 0u);
}

TEST_F(ObsTest, GetCounterReturnsStablePointers) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  obs::Counter* first = registry.GetCounter("test.stable");
  std::vector<std::thread> workers;
  std::vector<obs::Counter*> seen(8, nullptr);
  for (unsigned t = 0; t < 8; ++t) {
    workers.emplace_back([&registry, &seen, t] {
      seen[t] = registry.GetCounter("test.stable");
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (obs::Counter* pointer : seen) EXPECT_EQ(pointer, first);
}

TEST_F(ObsTest, HistogramCountsSumsAndBuckets) {
  obs::MetricsRegistry::SetEnabled(true);
  obs::Histogram* histogram =
      obs::MetricsRegistry::Get().GetHistogram("test.hist");
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < 4; ++t) {
    workers.emplace_back([histogram] {
      for (uint64_t i = 0; i < 1'000; ++i) histogram->Record(i);
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(histogram->Count(), 4'000u);
  EXPECT_EQ(histogram->Sum(), 4u * (999 * 1'000 / 2));
  const auto buckets = histogram->Buckets();
  EXPECT_EQ(buckets[0], 4u);   // value 0 has bit width 0
  EXPECT_EQ(buckets[1], 4u);   // value 1
  EXPECT_EQ(buckets[2], 8u);   // values 2, 3
  uint64_t total = 0;
  for (uint64_t count : buckets) total += count;
  EXPECT_EQ(total, 4'000u);
}

TEST_F(ObsTest, DisabledRegistryIsInert) {
  // Disabled by SetUp. The gated wrappers must leave no traces: that is
  // the zero-overhead contract every hot path relies on.
  obs::Counter* counter =
      obs::MetricsRegistry::Get().GetCounter("test.disabled");
  obs::CounterAdd(counter, 42);
  obs::SetGauge("test.disabled_gauge", 1.0);
  obs::RecordTimeParams("test", obs::TimeParams{1, 2, 3, 4});
  EXPECT_EQ(counter->Value(), 0u);
  std::ostringstream os;
  obs::MetricsRegistry::Get().DumpJson(os);
  const JsonValue dump = MustParse(os.str());
  EXPECT_EQ(dump.At("gauges").object.size(), 0u);
}

TEST_F(ObsTest, DumpJsonShapeAndTimeParams) {
  obs::MetricsRegistry::SetEnabled(true);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  registry.GetCounter("test.count")->Add(7);
  registry.GetHistogram("test.lat_us")->Record(100);
  obs::TimeParams times;
  times.parse_ms = 1;
  times.shapes_ms = 2;
  times.graph_ms = 3;
  times.comp_ms = 4;
  obs::RecordTimeParams("check", times);

  std::ostringstream os;
  registry.DumpJson(os);
  const JsonValue dump = MustParse(os.str());
  EXPECT_EQ(dump.At("counters").At("test.count").number, 7);
  EXPECT_EQ(dump.At("gauges").At("check.t_parse_ms").number, 1);
  EXPECT_EQ(dump.At("gauges").At("check.t_shapes_ms").number, 2);
  EXPECT_EQ(dump.At("gauges").At("check.t_graph_ms").number, 3);
  EXPECT_EQ(dump.At("gauges").At("check.t_comp_ms").number, 4);
  EXPECT_EQ(dump.At("gauges").At("check.t_total_ms").number, 10);
  const JsonValue& hist = dump.At("histograms").At("test.lat_us");
  EXPECT_EQ(hist.At("count").number, 1);
  EXPECT_EQ(hist.At("sum").number, 100);
  ASSERT_EQ(hist.At("buckets").array.size(), 1u);  // sparse: one bucket hit
  // 100 has bit width 7; the bucket's inclusive upper bound is 2^7 - 1.
  EXPECT_EQ(hist.At("buckets").array[0].At("le").number, 127);
  EXPECT_EQ(hist.At("buckets").array[0].At("count").number, 1);
}

// ---------------------------------------------------------------------------
// Trace recorder

TEST_F(ObsTest, DisabledSpansEmitNothing) {
  {
    obs::TraceSpan span("test", "noop", "arg", 1);
    obs::TraceSpan plain("test", "noop2");
  }
  // Nothing recorded into whatever session existed; a fresh session is
  // empty too.
  obs::TraceRecorder::Get().Start(16);
  obs::TraceRecorder::Get().Stop();
  EXPECT_EQ(obs::TraceRecorder::Get().recorded(), 0u);
  EXPECT_EQ(obs::TraceRecorder::Get().dropped(), 0u);
}

TEST_F(ObsTest, ConcurrentEmitRecordsEverySpan) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Get();
  constexpr unsigned kThreads = 8;
  constexpr unsigned kSpans = 1'000;
  recorder.Start(/*events_per_thread=*/kSpans + 16);
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (unsigned i = 0; i < kSpans; ++i) {
        obs::TraceSpan span("test", "work", "thread",
                            static_cast<int64_t>(t), "i",
                            static_cast<int64_t>(i));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(recorder.recorded(), kThreads * kSpans);
  EXPECT_EQ(recorder.dropped(), 0u);

  std::ostringstream os;
  recorder.WriteJson(os);
  const JsonValue trace = MustParse(os.str());
  EXPECT_EQ(trace.At("displayTimeUnit").str, "ms");
  size_t metadata = 0, complete = 0;
  for (const JsonValue& event : trace.At("traceEvents").array) {
    const std::string& ph = event.At("ph").str;
    if (ph == "M") {
      ++metadata;
      EXPECT_EQ(event.At("name").str, "thread_name");
    } else {
      ASSERT_EQ(ph, "X");
      ++complete;
      EXPECT_TRUE(event.Has("ts"));
      EXPECT_TRUE(event.Has("dur"));
      EXPECT_TRUE(event.Has("tid"));
      EXPECT_EQ(event.At("name").str, "work");
      EXPECT_EQ(event.At("cat").str, "test");
      EXPECT_TRUE(event.At("args").Has("thread"));
      EXPECT_TRUE(event.At("args").Has("i"));
    }
  }
  EXPECT_EQ(metadata, kThreads);
  EXPECT_EQ(complete, kThreads * kSpans);
}

TEST_F(ObsTest, OverflowDropsAndCounts) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Get();
  recorder.Start(/*events_per_thread=*/8);
  for (int i = 0; i < 20; ++i) {
    obs::TraceSpan span("test", "overflow");
  }
  EXPECT_EQ(recorder.recorded(), 8u);
  EXPECT_EQ(recorder.dropped(), 12u);

  std::ostringstream os;
  recorder.WriteJson(os);
  const JsonValue trace = MustParse(os.str());
  EXPECT_EQ(trace.At("otherData").At("droppedEvents").str, "12");
  size_t complete = 0;
  for (const JsonValue& event : trace.At("traceEvents").array) {
    if (event.At("ph").str == "X") ++complete;
  }
  EXPECT_EQ(complete, 8u);
}

TEST_F(ObsTest, RestartExcludesThePreviousSession) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Get();
  recorder.Start(64);
  for (int i = 0; i < 5; ++i) obs::TraceSpan span("test", "old");
  recorder.Stop();
  // New session: the stale thread-local buffer must re-register, and the
  // five old spans must not leak into this artifact.
  recorder.Start(64);
  for (int i = 0; i < 2; ++i) obs::TraceSpan span("test", "fresh");
  EXPECT_EQ(recorder.recorded(), 2u);
  std::ostringstream os;
  recorder.WriteJson(os);
  const JsonValue trace = MustParse(os.str());
  size_t complete = 0;
  for (const JsonValue& event : trace.At("traceEvents").array) {
    if (event.At("ph").str != "X") continue;
    ++complete;
    EXPECT_EQ(event.At("name").str, "fresh");
  }
  EXPECT_EQ(complete, 2u);
}

// Span intervals on one thread must nest: for any two, either disjoint or
// one contains the other. (Partial overlap would mean a torn or misdated
// span — Perfetto renders those as garbage rows.)
void ExpectWellNested(const JsonValue& trace) {
  struct Interval {
    int64_t begin, end;
  };
  std::map<double, std::vector<Interval>> by_tid;
  for (const JsonValue& event : trace.At("traceEvents").array) {
    if (event.At("ph").str != "X") continue;
    const int64_t ts = static_cast<int64_t>(event.At("ts").number);
    const int64_t dur = static_cast<int64_t>(event.At("dur").number);
    ASSERT_GE(ts, 0);
    ASSERT_GE(dur, 0);
    by_tid[event.At("tid").number].push_back({ts, ts + dur});
  }
  for (auto& [tid, intervals] : by_tid) {
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval& a, const Interval& b) {
                return a.begin != b.begin ? a.begin < b.begin : a.end > b.end;
              });
    std::vector<Interval> stack;
    for (const Interval& interval : intervals) {
      while (!stack.empty() && stack.back().end <= interval.begin) {
        stack.pop_back();
      }
      if (!stack.empty()) {
        EXPECT_LE(interval.end, stack.back().end)
            << "span [" << interval.begin << ", " << interval.end
            << ") partially overlaps [" << stack.back().begin << ", "
            << stack.back().end << ") on tid " << tid;
      }
      stack.push_back(interval);
    }
  }
}

TEST_F(ObsTest, NestedSpansAreWellFormedInTheArtifact) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Get();
  recorder.Start(256);
  for (int round = 0; round < 3; ++round) {
    obs::TraceSpan outer("test", "outer", "round", round);
    for (int task = 0; task < 4; ++task) {
      obs::TraceSpan inner("test", "inner", "task", task);
      obs::TraceSpan innermost("test", "leaf");
    }
  }
  std::ostringstream os;
  recorder.WriteJson(os);
  const JsonValue trace = MustParse(os.str());
  ExpectWellNested(trace);
}

// ---------------------------------------------------------------------------
// Progress reporter

TEST_F(ObsTest, ProgressReporterPrintsAFinalLine) {
  obs::ChaseProgressSink sink;
  sink.Update(3, 1'234, 56, 789);
  std::ostringstream os;
  {
    // A huge interval: the line we see is the final one Stop() prints, so
    // the test never sleeps.
    obs::ProgressReporter reporter(&os, &sink, std::chrono::seconds(3600));
  }
  const std::string out = os.str();
  EXPECT_NE(out.find("[chase] round 3"), std::string::npos) << out;
  EXPECT_NE(out.find("atoms 1234"), std::string::npos) << out;
  EXPECT_NE(out.find("nulls 56"), std::string::npos) << out;
  EXPECT_NE(out.find("triggers 789"), std::string::npos) << out;
}

// ---------------------------------------------------------------------------
// End to end: tracing must observe, never perturb.

TEST_F(ObsTest, ChaseIsBitIdenticalWithTracingOn) {
  // Non-linear transitive closure plus an existential fan-out: exercises
  // rounds, the budgeted parallel homomorphism engine, and waves.
  auto program = ParseProgram(
      "e(a,b). e(b,c). e(c,d). e(d,f). e(f,g).\n"
      "e(X,Y), e(Y,Z) -> e(X,Z).\n"
      "e(X,Y) -> p(X,W).\n");
  ASSERT_TRUE(program.ok()) << program.status();

  ChaseOptions serial_options;
  serial_options.max_atoms = 50'000;
  auto baseline = RunChase(*program->database, program->tgds, serial_options);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  std::vector<GroundAtom> baseline_atoms;
  baseline->instance.ForEachAtom(
      [&](const GroundAtom& atom) { baseline_atoms.push_back(atom); });
  ASSERT_GT(baseline->rounds, 1u);

  for (unsigned threads : {1u, 2u, 4u}) {
    obs::MetricsRegistry::Get().Reset();
    obs::MetricsRegistry::SetEnabled(true);
    obs::TraceRecorder::Get().Start();

    ChaseOptions options = serial_options;
    options.frontier_threads = threads;
    options.hom_budget = 3;  // tight budget: many waves
    auto traced = RunChase(*program->database, program->tgds, options);
    obs::TraceRecorder::Get().Stop();
    obs::MetricsRegistry::SetEnabled(false);
    ASSERT_TRUE(traced.ok()) << traced.status();

    const std::string label = "threads " + std::to_string(threads);
    EXPECT_EQ(traced->outcome, baseline->outcome) << label;
    EXPECT_EQ(traced->rounds, baseline->rounds) << label;
    EXPECT_EQ(traced->triggers_fired, baseline->triggers_fired) << label;
    std::vector<GroundAtom> traced_atoms;
    traced->instance.ForEachAtom(
        [&](const GroundAtom& atom) { traced_atoms.push_back(atom); });
    EXPECT_EQ(traced_atoms, baseline_atoms) << label;

    // The artifact is valid Chrome trace JSON, well nested, and carries
    // the chase's structural spans.
    std::ostringstream os;
    obs::TraceRecorder::Get().WriteJson(os);
    const JsonValue trace = MustParse(os.str());
    ExpectWellNested(trace);
    std::map<std::string, size_t> names;
    for (const JsonValue& event : trace.At("traceEvents").array) {
      if (event.At("ph").str == "X") ++names[event.At("name").str];
    }
    EXPECT_GE(names["run"], 1u) << label;
    EXPECT_EQ(names["round"], baseline->rounds) << label;
    if (threads > 1) {
      // The parallel non-linear engine announces its budgeted windows.
      EXPECT_GE(names["wave"], 1u) << label;
      EXPECT_GE(names["hom_task"], 1u) << label;
    }

    // The registry mirrors the result counters as gauges.
    std::ostringstream metrics_os;
    obs::MetricsRegistry::Get().DumpJson(metrics_os);
    const JsonValue dump = MustParse(metrics_os.str());
    EXPECT_EQ(dump.At("gauges").At("chase.rounds").number,
              static_cast<double>(traced->rounds))
        << label;
    EXPECT_EQ(dump.At("gauges").At("chase.triggers_fired").number,
              static_cast<double>(traced->triggers_fired))
        << label;
    EXPECT_EQ(dump.At("gauges").At("chase.atoms").number,
              static_cast<double>(traced->instance.NumAtoms()))
        << label;
  }
}

}  // namespace
}  // namespace chase
