#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "gen/data_generator.h"
#include "pager/buffer_pool.h"
#include "pager/disk_database.h"
#include "pager/disk_manager.h"
#include "pager/disk_shape_finder.h"
#include "pager/disk_shape_source.h"
#include "pager/heap_file.h"
#include "pager/page.h"
#include "pager/prefetcher.h"
#include "storage/catalog.h"
#include "storage/shape_finder.h"

namespace chase {
namespace pager {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

GeneratedData MakeData(uint32_t preds, uint64_t rsize, uint64_t seed) {
  DataGenParams params;
  params.preds = preds;
  params.min_arity = 1;
  params.max_arity = 5;
  params.dsize = 100;
  params.rsize = rsize;
  params.seed = seed;
  auto data = GenerateData(params);
  EXPECT_TRUE(data.ok()) << data.status();
  return std::move(data).value();
}

// ---------------------------------------------------------------------------
// Page

TEST(PageTest, SealThenVerify) {
  Page page;
  page.Zero();
  PageHeader header;
  header.kind = static_cast<uint32_t>(PageKind::kHeap);
  WritePageHeader(&page, header);
  page.WriteU32(kPageHeaderSize, 0xdeadbeef);
  SealPage(&page);
  EXPECT_TRUE(VerifyPage(page));
}

TEST(PageTest, CorruptedBodyFailsVerify) {
  Page page;
  page.Zero();
  WritePageHeader(&page, PageHeader{});
  page.WriteU32(kPageHeaderSize, 1);
  SealPage(&page);
  page.WriteU32(kPageHeaderSize, 2);  // corrupt after sealing
  EXPECT_FALSE(VerifyPage(page));
}

TEST(PageTest, BadMagicFailsVerify) {
  Page page;
  page.Zero();
  WritePageHeader(&page, PageHeader{});
  SealPage(&page);
  page.WriteU32(0, 0);  // clobber magic
  EXPECT_FALSE(VerifyPage(page));
}

TEST(PageTest, HeaderRoundTrip) {
  Page page;
  page.Zero();
  PageHeader header;
  header.kind = static_cast<uint32_t>(PageKind::kCatalog);
  header.next = 17;
  header.count = 42;
  WritePageHeader(&page, header);
  PageHeader read = ReadPageHeader(page);
  EXPECT_EQ(read.kind, header.kind);
  EXPECT_EQ(read.next, header.next);
  EXPECT_EQ(read.count, header.count);
}

// ---------------------------------------------------------------------------
// DiskManager

TEST(DiskManagerTest, CreateStartsWithCatalogRoot) {
  auto manager = DiskManager::Create(TempPath("dm_create.db"));
  ASSERT_TRUE(manager.ok()) << manager.status();
  EXPECT_EQ(manager->num_pages(), 1u);
  Page page;
  ASSERT_TRUE(manager->ReadPage(0, &page).ok());
  EXPECT_EQ(ReadPageHeader(page).kind,
            static_cast<uint32_t>(PageKind::kCatalog));
}

TEST(DiskManagerTest, WriteReadRoundTrip) {
  auto manager = DiskManager::Create(TempPath("dm_rw.db"));
  ASSERT_TRUE(manager.ok());
  auto id = manager->AllocatePage();
  ASSERT_TRUE(id.ok());
  Page page;
  page.Zero();
  WritePageHeader(&page, PageHeader{});
  page.WriteU64(kPageHeaderSize, 0x1122334455667788ULL);
  ASSERT_TRUE(manager->WritePage(*id, &page).ok());

  Page read;
  ASSERT_TRUE(manager->ReadPage(*id, &read).ok());
  EXPECT_EQ(read.ReadU64(kPageHeaderSize), 0x1122334455667788ULL);
}

TEST(DiskManagerTest, ReadUnallocatedPageIsOutOfRange) {
  auto manager = DiskManager::Create(TempPath("dm_oor.db"));
  ASSERT_TRUE(manager.ok());
  Page page;
  EXPECT_EQ(manager->ReadPage(99, &page).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(manager->WritePage(99, &page).code(), StatusCode::kOutOfRange);
}

TEST(DiskManagerTest, OpenMissingFileIsNotFound) {
  auto manager = DiskManager::Open(TempPath("does_not_exist.db"));
  EXPECT_EQ(manager.status().code(), StatusCode::kNotFound);
}

TEST(DiskManagerTest, OpenMisalignedFileIsFailedPrecondition) {
  std::string path = TempPath("dm_misaligned.db");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a page file", f);
  std::fclose(f);
  auto manager = DiskManager::Open(path);
  EXPECT_EQ(manager.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DiskManagerTest, PersistsAcrossReopen) {
  std::string path = TempPath("dm_reopen.db");
  PageId id = kInvalidPageId;
  {
    auto manager = DiskManager::Create(path);
    ASSERT_TRUE(manager.ok());
    auto allocated = manager->AllocatePage();
    ASSERT_TRUE(allocated.ok());
    id = *allocated;
    Page page;
    page.Zero();
    WritePageHeader(&page, PageHeader{});
    page.WriteU32(kPageHeaderSize, 7);
    ASSERT_TRUE(manager->WritePage(id, &page).ok());
    ASSERT_TRUE(manager->Sync().ok());
  }
  auto reopened = DiskManager::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->num_pages(), 2u);
  Page page;
  ASSERT_TRUE(reopened->ReadPage(id, &page).ok());
  EXPECT_EQ(page.ReadU32(kPageHeaderSize), 7u);
}

TEST(DiskManagerTest, CorruptedPageDetectedOnRead) {
  std::string path = TempPath("dm_corrupt.db");
  PageId id = kInvalidPageId;
  {
    auto manager = DiskManager::Create(path);
    ASSERT_TRUE(manager.ok());
    auto allocated = manager->AllocatePage();
    ASSERT_TRUE(allocated.ok());
    id = *allocated;
    Page page;
    page.Zero();
    WritePageHeader(&page, PageHeader{});
    page.WriteU32(kPageHeaderSize, 7);
    ASSERT_TRUE(manager->WritePage(id, &page).ok());
  }
  {
    // Flip a byte in the page body directly in the file.
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(id) * kPageSize + kPageHeaderSize + 100,
               SEEK_SET);
    std::fputc(0x5a, f);
    std::fclose(f);
  }
  auto manager = DiskManager::Open(path);
  ASSERT_TRUE(manager.ok());
  Page page;
  EXPECT_EQ(manager->ReadPage(id, &page).code(), StatusCode::kInternal);
}

TEST(DiskManagerTest, ReadFaultInjection) {
  auto manager = DiskManager::Create(TempPath("dm_rfault.db"));
  ASSERT_TRUE(manager.ok());
  manager->set_read_fault([](PageId id) {
    return id == 0 ? InternalError("injected read fault") : OkStatus();
  });
  Page page;
  Status status = manager->ReadPage(0, &page);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(status.message(), "injected read fault");
  manager->set_read_fault(nullptr);
  EXPECT_TRUE(manager->ReadPage(0, &page).ok());
}

TEST(DiskManagerTest, WriteFaultInjection) {
  auto manager = DiskManager::Create(TempPath("dm_wfault.db"));
  ASSERT_TRUE(manager.ok());
  int writes = 0;
  manager->set_write_fault([&](PageId) {
    return ++writes > 1 ? InternalError("disk full") : OkStatus();
  });
  Page page;
  page.Zero();
  WritePageHeader(&page, PageHeader{});
  EXPECT_TRUE(manager->WritePage(0, &page).ok());
  EXPECT_EQ(manager->WritePage(0, &page).code(), StatusCode::kInternal);
}

TEST(DiskManagerTest, StatsCountIo) {
  auto manager = DiskManager::Create(TempPath("dm_stats.db"));
  ASSERT_TRUE(manager.ok());
  manager->stats().Reset();
  auto id = manager->AllocatePage();
  ASSERT_TRUE(id.ok());
  Page page;
  page.Zero();
  WritePageHeader(&page, PageHeader{});
  ASSERT_TRUE(manager->WritePage(*id, &page).ok());
  ASSERT_TRUE(manager->ReadPage(*id, &page).ok());
  ASSERT_TRUE(manager->Sync().ok());
  EXPECT_EQ(manager->stats().pages_allocated, 1u);
  EXPECT_EQ(manager->stats().pages_written, 1u);
  EXPECT_EQ(manager->stats().pages_read, 1u);
  EXPECT_EQ(manager->stats().syncs, 1u);
}

// ---------------------------------------------------------------------------
// BufferPool

TEST(BufferPoolTest, FetchHitsAfterMiss) {
  auto manager = DiskManager::Create(TempPath("bp_hits.db"));
  ASSERT_TRUE(manager.ok());
  BufferPool pool(&manager.value(), 4);
  {
    auto guard = pool.Fetch(0);
    ASSERT_TRUE(guard.ok());
  }
  {
    auto guard = pool.Fetch(0);
    ASSERT_TRUE(guard.ok());
  }
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(BufferPoolTest, EvictsUnpinnedPages) {
  auto manager = DiskManager::Create(TempPath("bp_evict.db"));
  ASSERT_TRUE(manager.ok());
  BufferPool pool(&manager.value(), 2);
  std::vector<PageId> pages;
  for (int i = 0; i < 4; ++i) {
    auto guard = pool.Allocate();
    ASSERT_TRUE(guard.ok());
    pages.push_back(guard->page_id());
  }
  // 4 pages passed through a 2-frame pool: at least 2 evictions.
  EXPECT_GE(pool.stats().evictions, 2u);
  // All pages still readable (dirty frames were written back).
  for (PageId id : pages) {
    auto guard = pool.Fetch(id);
    ASSERT_TRUE(guard.ok()) << guard.status();
  }
}

TEST(BufferPoolTest, AllFramesPinnedIsResourceExhausted) {
  auto manager = DiskManager::Create(TempPath("bp_pinned.db"));
  ASSERT_TRUE(manager.ok());
  BufferPool pool(&manager.value(), 2);
  auto g1 = pool.Allocate();
  ASSERT_TRUE(g1.ok());
  auto g2 = pool.Allocate();
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(pool.pinned_frames(), 2u);
  auto g3 = pool.Allocate();
  EXPECT_EQ(g3.status().code(), StatusCode::kResourceExhausted);
}

TEST(BufferPoolTest, GuardReleaseUnpins) {
  auto manager = DiskManager::Create(TempPath("bp_release.db"));
  ASSERT_TRUE(manager.ok());
  BufferPool pool(&manager.value(), 1);
  auto g1 = pool.Fetch(0);
  ASSERT_TRUE(g1.ok());
  g1->Release();
  EXPECT_EQ(pool.pinned_frames(), 0u);
  auto g2 = pool.Allocate();  // needs the single frame back
  EXPECT_TRUE(g2.ok());
}

TEST(BufferPoolTest, DirtyPagesReachDiskOnFlush) {
  std::string path = TempPath("bp_flush.db");
  PageId id = kInvalidPageId;
  {
    auto manager = DiskManager::Create(path);
    ASSERT_TRUE(manager.ok());
    BufferPool pool(&manager.value(), 4);
    auto guard = pool.Allocate();
    ASSERT_TRUE(guard.ok());
    id = guard->page_id();
    Page& page = guard->MutablePage();
    WritePageHeader(&page, PageHeader{});
    page.WriteU32(kPageHeaderSize, 321);
    guard->Release();
    ASSERT_TRUE(pool.Flush().ok());
  }
  auto reopened = DiskManager::Open(path);
  ASSERT_TRUE(reopened.ok());
  Page page;
  ASSERT_TRUE(reopened->ReadPage(id, &page).ok());
  EXPECT_EQ(page.ReadU32(kPageHeaderSize), 321u);
}

// ---------------------------------------------------------------------------
// BufferPool sharding

TEST(BufferPoolShardingTest, SmallPoolsStaySingleSharded) {
  auto manager = DiskManager::Create(TempPath("bps_small.db"));
  ASSERT_TRUE(manager.ok());
  BufferPool pool(&manager.value(), 4);
  // Per-shard capacity semantics (pinning, exhaustion) must match the
  // pre-sharding pool when there are too few frames to split.
  EXPECT_EQ(pool.num_shards(), 1u);
}

TEST(BufferPoolShardingTest, LargePoolsAutoShardAndClampExplicitCounts) {
  auto manager = DiskManager::Create(TempPath("bps_auto.db"));
  ASSERT_TRUE(manager.ok());
  BufferPool auto_pool(&manager.value(), 64);
  EXPECT_EQ(auto_pool.num_shards(), BufferPool::kDefaultShards);
  BufferPool explicit_pool(&manager.value(), 16, 4);
  EXPECT_EQ(explicit_pool.num_shards(), 4u);
  // Never more shards than frames.
  BufferPool clamped(&manager.value(), 2, 64);
  EXPECT_EQ(clamped.num_shards(), 2u);
  EXPECT_EQ(clamped.num_frames(), 2u);
}

TEST(BufferPoolShardingTest, ShardedPoolRoundTripsPagesThroughEviction) {
  auto manager = DiskManager::Create(TempPath("bps_roundtrip.db"));
  ASSERT_TRUE(manager.ok());
  BufferPool pool(&manager.value(), 8, 4);
  std::vector<PageId> pages;
  for (uint32_t i = 0; i < 64; ++i) {
    auto guard = pool.Allocate();
    ASSERT_TRUE(guard.ok()) << guard.status();
    Page& page = guard->MutablePage();
    WritePageHeader(&page, PageHeader{});
    page.WriteU32(kPageHeaderSize, 1000 + i);
    pages.push_back(guard->page_id());
  }
  // 64 pages through 8 frames: evictions with dirty write-back happened.
  EXPECT_GT(pool.stats().evictions, 0u);
  EXPECT_GT(pool.stats().dirty_writebacks, 0u);
  for (uint32_t i = 0; i < pages.size(); ++i) {
    auto guard = pool.Fetch(pages[i]);
    ASSERT_TRUE(guard.ok()) << guard.status();
    EXPECT_EQ(guard->page().ReadU32(kPageHeaderSize), 1000 + i);
  }
}

// The pool-stress suite: more worker threads than frames hammering Fetch
// while reader threads poll the aggregated pool and disk counters (the
// metering path DiskShapeSource::Io takes mid-scan). Run under TSan in CI.
TEST(BufferPoolShardingTest, StressMoreThreadsThanFrames) {
  auto manager = DiskManager::Create(TempPath("bps_stress.db"));
  ASSERT_TRUE(manager.ok());
  BufferPool pool(&manager.value(), 4, 2);

  std::vector<PageId> pages;
  for (uint32_t i = 0; i < 32; ++i) {
    auto guard = pool.Allocate();
    ASSERT_TRUE(guard.ok());
    Page& page = guard->MutablePage();
    WritePageHeader(&page, PageHeader{});
    page.WriteU32(kPageHeaderSize, 7000 + i);
    pages.push_back(guard->page_id());
  }

  constexpr unsigned kWorkers = 8;  // twice the frame count
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> verified{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kWorkers; ++t) {
    threads.emplace_back([&, t] {
      uint64_t state = 0x9e3779b97f4a7c15ULL * (t + 1);
      for (int iter = 0; iter < 400; ++iter) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        const uint32_t i = static_cast<uint32_t>((state >> 33) %
                                                 pages.size());
        auto guard = pool.Fetch(pages[i]);
        if (!guard.ok()) {
          // With more pins in flight than frames, per-shard exhaustion is
          // legitimate back-pressure; anything else is a bug.
          if (guard.status().code() != StatusCode::kResourceExhausted) {
            ++failures;
            return;
          }
          continue;
        }
        if (guard->page().ReadU32(kPageHeaderSize) != 7000 + i) {
          ++failures;
          return;
        }
        ++verified;
      }
    });
  }
  // Concurrent metering readers: aggregate counters while scans mutate the
  // per-shard stats under their latches.
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      uint64_t sink = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const BufferPoolStats stats = pool.stats();
        sink += stats.hits + stats.misses + stats.evictions;
        sink += pool.disk().stats().pages_read.load(
            std::memory_order_relaxed);
        sink += pool.pinned_frames();
      }
      EXPECT_GE(sink, 0u);
    });
  }
  for (std::thread& worker : threads) worker.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(verified.load(), 0u);
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(pool.pinned_frames(), 0u);
  EXPECT_GE(stats.hits + stats.misses, verified.load());
}

// ---------------------------------------------------------------------------
// Prefetch

TEST(PrefetchTest, PrefetchFaultsPagesWithoutPinning) {
  const std::string path = TempPath("pf_nopin.db");
  PageId id = kInvalidPageId;
  {
    auto manager = DiskManager::Create(path);
    ASSERT_TRUE(manager.ok());
    BufferPool pool(&manager.value(), 4);
    auto guard = pool.Allocate();
    ASSERT_TRUE(guard.ok());
    id = guard->page_id();
    Page& page = guard->MutablePage();
    WritePageHeader(&page, PageHeader{});
    page.WriteU32(kPageHeaderSize, 4242);
    guard->Release();
    ASSERT_TRUE(pool.Flush().ok());
  }
  auto manager = DiskManager::Open(path);
  ASSERT_TRUE(manager.ok());
  BufferPool pool(&manager.value(), 4);  // cold
  ASSERT_TRUE(pool.Prefetch(id).ok());
  EXPECT_EQ(pool.pinned_frames(), 0u);
  EXPECT_EQ(pool.stats().prefetches, 1u);
  EXPECT_EQ(pool.stats().misses, 0u);

  auto guard = pool.Fetch(id);
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ(guard->page().ReadU32(kPageHeaderSize), 4242u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 0u);

  // Re-prefetching a resident page is a cheap no-op.
  ASSERT_TRUE(pool.Prefetch(id).ok());
  EXPECT_EQ(pool.stats().prefetches, 1u);
  EXPECT_EQ(pool.stats().prefetch_drops, 1u);
}

TEST(PrefetchTest, BackgroundPrefetcherWarmsColdPool) {
  const std::string path = TempPath("pf_warm.db");
  std::vector<PageId> pages;
  {
    auto manager = DiskManager::Create(path);
    ASSERT_TRUE(manager.ok());
    BufferPool pool(&manager.value(), 8);
    for (int i = 0; i < 6; ++i) {
      auto guard = pool.Allocate();
      ASSERT_TRUE(guard.ok());
      WritePageHeader(&guard->MutablePage(), PageHeader{});
      pages.push_back(guard->page_id());
    }
    ASSERT_TRUE(pool.Flush().ok());
  }
  auto manager = DiskManager::Open(path);
  ASSERT_TRUE(manager.ok());
  BufferPool pool(&manager.value(), 16, 4);
  {
    Prefetcher prefetcher(&pool, /*threads=*/2);
    prefetcher.Enqueue(pages);
    // Wait for the queue to drain: every page either prefetched or dropped.
    while (pool.stats().prefetches + pool.stats().prefetch_drops <
           pages.size()) {
      std::this_thread::yield();
    }
  }  // destructor joins the workers
  EXPECT_EQ(pool.stats().prefetches, pages.size());
  for (PageId id : pages) {
    ASSERT_TRUE(pool.Fetch(id).ok());
  }
  const BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.hits, pages.size());
  EXPECT_EQ(stats.misses, 0u);
}

// Regression for the Enqueue wakeup path: per-page enqueues (the shape of
// every ranged scan's read-ahead, which now wake one worker per admitted
// page instead of notify_all), a full queue (admits nothing, wakes nobody,
// counts drops), and the Drain handshake must all keep working.
TEST(PrefetchTest, PerPageEnqueueAndFullQueueDrops) {
  const std::string path = TempPath("pf_notify.db");
  std::vector<PageId> pages;
  {
    auto manager = DiskManager::Create(path);
    ASSERT_TRUE(manager.ok());
    BufferPool pool(&manager.value(), 8);
    for (int i = 0; i < 6; ++i) {
      auto guard = pool.Allocate();
      ASSERT_TRUE(guard.ok());
      WritePageHeader(&guard->MutablePage(), PageHeader{});
      pages.push_back(guard->page_id());
    }
    ASSERT_TRUE(pool.Flush().ok());
  }
  auto manager = DiskManager::Open(path);
  ASSERT_TRUE(manager.ok());
  BufferPool pool(&manager.value(), 16, 4);
  Prefetcher prefetcher(&pool, /*threads=*/2);
  for (PageId id : pages) prefetcher.Enqueue(id);  // one wakeup per page
  prefetcher.Drain();
  EXPECT_EQ(pool.stats().prefetches + pool.stats().prefetch_drops,
            pages.size());
  EXPECT_EQ(prefetcher.dropped(), 0u);
  for (PageId id : pages) {
    ASSERT_TRUE(pool.Fetch(id).ok());
  }

  // Flood past kMaxQueue in one call: the excess is counted as dropped and
  // the drain handshake still completes (the admitted prefix is best-effort
  // work the workers chew through; duplicates collapse inside the pool).
  std::vector<PageId> flood(Prefetcher::kMaxQueue + 100, pages[0]);
  prefetcher.Enqueue(flood);
  prefetcher.Drain();
  EXPECT_GE(prefetcher.dropped(), 100u);
}

// Cold-pool scans must return identical results and tuple counts with
// read-ahead on and off, at every thread count.
TEST(PrefetchTest, ScanWithReadAheadMatchesPrefetchOff) {
  // Relations several times larger than the pool, so pages cannot stay
  // resident between the directory build and the scan — every page is a
  // real fault the prefetcher can take over.
  GeneratedData data = MakeData(3, 20000, 77);
  storage::Catalog catalog(data.database.get());
  const std::vector<Shape> expected = storage::FindShapesInMemory(catalog);

  const std::string path = TempPath("pf_scan_equality.db");
  ASSERT_TRUE(DiskDatabase::Create(path, *data.database).ok());
  for (unsigned threads : {1u, 4u, 8u}) {
    for (unsigned prefetch : {0u, 8u}) {
      // Fresh open per run: the pool starts cold.
      auto disk_db = DiskDatabase::Open(path, /*num_frames=*/32,
                                        /*pool_shards=*/4);
      ASSERT_TRUE(disk_db.ok()) << disk_db.status();
      DiskShapeSource source(disk_db->get());
      auto shapes = storage::FindShapes(
          source, {storage::ShapeFinderMode::kScan, threads, 0, prefetch});
      ASSERT_TRUE(shapes.ok()) << shapes.status();
      EXPECT_EQ(*shapes, expected)
          << "threads " << threads << ", prefetch " << prefetch;
      EXPECT_EQ(source.stats().tuples_scanned, data.database->TotalFacts());
      if (prefetch > 0) {
        // The scan enqueued read-ahead; the background workers drain it on
        // their own schedule (on a loaded single-core machine possibly only
        // once we yield here), and every request either faults a page or
        // collapses against a resident one.
        const BufferPool& pool = (*disk_db)->buffer_pool();
        const auto processed = [&] {
          const BufferPoolStats stats = pool.stats();
          return stats.prefetches + stats.prefetch_drops;
        };
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(30);
        while (processed() == 0 &&
               std::chrono::steady_clock::now() < deadline) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        EXPECT_GT(processed(), 0u)
            << "threads " << threads << ": no read-ahead was processed";
      } else {
        EXPECT_EQ(source.Io().pool_prefetches, 0u);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(PrefetchTest, FindShapesOwnsTheReadAheadKnob) {
  GeneratedData data = MakeData(2, 50, 5);
  const std::string path = TempPath("pf_knob.db");
  auto disk_db = DiskDatabase::Create(path, *data.database);
  ASSERT_TRUE(disk_db.ok());
  DiskShapeSource source(disk_db->get(), /*read_ahead=*/16);
  EXPECT_EQ(source.read_ahead(), 16u);
  // A run with prefetch unset turns read-ahead off for that run (and
  // leaves the source with the run's setting, by design).
  ASSERT_TRUE(storage::FindShapes(source, {}).ok());
  EXPECT_EQ(source.read_ahead(), 0u);
  ASSERT_TRUE(storage::FindShapes(
                  source, {storage::ShapeFinderMode::kScan, 2, 0, 4})
                  .ok());
  EXPECT_EQ(source.read_ahead(), 4u);
  // The exists plan's probes early-exit; its runs never enable read-ahead.
  ASSERT_TRUE(storage::FindShapes(
                  source, {storage::ShapeFinderMode::kExists, 1, 0, 8})
                  .ok());
  EXPECT_EQ(source.read_ahead(), 0u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// HeapFile

TEST(HeapFileTest, TuplesPerPageLeavesRoomForHeader) {
  EXPECT_EQ(HeapFile::TuplesPerPage(1), (kPageSize - kPageHeaderSize) / 4);
  EXPECT_EQ(HeapFile::TuplesPerPage(5), (kPageSize - kPageHeaderSize) / 20);
  EXPECT_GT(HeapFile::TuplesPerPage(11), 0u);
}

TEST(HeapFileTest, ZeroArityRejected) {
  auto manager = DiskManager::Create(TempPath("hf_zero.db"));
  ASSERT_TRUE(manager.ok());
  BufferPool pool(&manager.value(), 4);
  auto heap = HeapFile::Create(&pool, 0);
  EXPECT_EQ(heap.status().code(), StatusCode::kInvalidArgument);
}

TEST(HeapFileTest, AppendScanRoundTripAcrossPages) {
  auto manager = DiskManager::Create(TempPath("hf_roundtrip.db"));
  ASSERT_TRUE(manager.ok());
  BufferPool pool(&manager.value(), 4);
  auto heap = HeapFile::Create(&pool, 3);
  ASSERT_TRUE(heap.ok());

  // Enough tuples to span several pages.
  const uint32_t n = 3 * HeapFile::TuplesPerPage(3) + 17;
  for (uint32_t i = 0; i < n; ++i) {
    std::vector<uint32_t> tuple = {i, i * 2, i * 3};
    ASSERT_TRUE(heap->Append(tuple).ok());
  }
  EXPECT_EQ(heap->num_tuples(), n);

  uint32_t seen = 0;
  ASSERT_TRUE(heap->Scan([&](std::span<const uint32_t> tuple) {
                    EXPECT_EQ(tuple[0], seen);
                    EXPECT_EQ(tuple[1], seen * 2);
                    EXPECT_EQ(tuple[2], seen * 3);
                    ++seen;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(seen, n);
}

TEST(HeapFileTest, ScanStopsEarly) {
  auto manager = DiskManager::Create(TempPath("hf_early.db"));
  ASSERT_TRUE(manager.ok());
  BufferPool pool(&manager.value(), 4);
  auto heap = HeapFile::Create(&pool, 1);
  ASSERT_TRUE(heap.ok());
  for (uint32_t i = 0; i < 100; ++i) {
    std::vector<uint32_t> tuple = {i};
    ASSERT_TRUE(heap->Append(tuple).ok());
  }
  uint32_t seen = 0;
  ASSERT_TRUE(heap->Scan([&](std::span<const uint32_t>) {
                    return ++seen < 5;
                  })
                  .ok());
  EXPECT_EQ(seen, 5u);
}

TEST(HeapFileTest, WrongWidthRejected) {
  auto manager = DiskManager::Create(TempPath("hf_width.db"));
  ASSERT_TRUE(manager.ok());
  BufferPool pool(&manager.value(), 4);
  auto heap = HeapFile::Create(&pool, 2);
  ASSERT_TRUE(heap.ok());
  std::vector<uint32_t> tuple = {1, 2, 3};
  EXPECT_EQ(heap->Append(tuple).code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// DiskDatabase

bool SameContents(const Database& a, const Database& b) {
  if (a.schema().NumPredicates() != b.schema().NumPredicates()) return false;
  for (PredId pred = 0; pred < a.schema().NumPredicates(); ++pred) {
    auto ta = a.Tuples(pred);
    auto tb = b.Tuples(pred);
    if (!std::equal(ta.begin(), ta.end(), tb.begin(), tb.end())) return false;
  }
  return true;
}

TEST(DiskDatabaseTest, CreateOpenToDatabaseRoundTrip) {
  GeneratedData data = MakeData(8, 200, 42);
  std::string path = TempPath("dd_roundtrip.db");
  {
    auto disk_db = DiskDatabase::Create(path, *data.database);
    ASSERT_TRUE(disk_db.ok()) << disk_db.status();
    EXPECT_EQ((*disk_db)->TotalTuples(), data.database->TotalFacts());
  }
  auto reopened = DiskDatabase::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->schema().NumPredicates(),
            data.schema->NumPredicates());
  auto loaded = (*reopened)->ToDatabase();
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(SameContents(*data.database, *loaded));
}

TEST(DiskDatabaseTest, NamedConstantsSurviveReopen) {
  Schema schema;
  auto pred = schema.AddPredicate("r", 2);
  ASSERT_TRUE(pred.ok());
  Database db(&schema);
  uint32_t alice = db.InternConstant("alice");
  uint32_t bob = db.InternConstant("bob");
  std::vector<uint32_t> tuple = {alice, bob};
  ASSERT_TRUE(db.AddFact(*pred, tuple).ok());

  std::string path = TempPath("dd_names.db");
  ASSERT_TRUE(DiskDatabase::Create(path, db).ok());
  auto reopened = DiskDatabase::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->ConstantName(alice), "alice");
  EXPECT_EQ((*reopened)->ConstantName(bob), "bob");
}

TEST(DiskDatabaseTest, NonEmptyPredicatesMatchesInMemory) {
  GeneratedData data = MakeData(6, 10, 7);
  // Add one empty predicate.
  auto empty = data.schema->AddPredicate("always_empty", 2);
  ASSERT_TRUE(empty.ok());
  std::string path = TempPath("dd_nonempty.db");
  auto disk_db = DiskDatabase::Create(path, *data.database);
  ASSERT_TRUE(disk_db.ok());
  EXPECT_EQ((*disk_db)->NonEmptyPredicates(),
            data.database->NonEmptyPredicates());
}

TEST(DiskDatabaseTest, AppendThenSaveCatalogPersists) {
  GeneratedData data = MakeData(3, 5, 11);
  std::string path = TempPath("dd_append.db");
  uint64_t before = 0;
  {
    auto disk_db = DiskDatabase::Create(path, *data.database);
    ASSERT_TRUE(disk_db.ok());
    before = (*disk_db)->TotalTuples();
    const uint32_t arity = (*disk_db)->schema().Arity(0);
    std::vector<uint32_t> tuple(arity, 9);
    ASSERT_TRUE((*disk_db)->Append(0, tuple).ok());
    ASSERT_TRUE((*disk_db)->SaveCatalog().ok());
  }
  auto reopened = DiskDatabase::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->TotalTuples(), before + 1);
}

TEST(DiskDatabaseTest, LargeCatalogSpansMultiplePages) {
  // Enough predicates with long names that the serialized catalog exceeds
  // one page.
  Schema schema;
  Database db(&schema);
  const int preds = 600;
  for (int i = 0; i < preds; ++i) {
    std::string name = "very_long_predicate_name_for_catalog_overflow_" +
                       std::to_string(i);
    auto pred = schema.AddPredicate(name, 2);
    ASSERT_TRUE(pred.ok());
    std::vector<uint32_t> tuple = {static_cast<uint32_t>(i),
                                   static_cast<uint32_t>(i + 1)};
    ASSERT_TRUE(db.AddFact(*pred, tuple).ok());
  }
  std::string path = TempPath("dd_bigcat.db");
  ASSERT_TRUE(DiskDatabase::Create(path, db).ok());
  auto reopened = DiskDatabase::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->schema().NumPredicates(), schema.NumPredicates());
  EXPECT_EQ((*reopened)->TotalTuples(), static_cast<uint64_t>(preds));
}

TEST(DiskDatabaseTest, ScanReadFaultPropagates) {
  GeneratedData data = MakeData(2, 2000, 13);
  std::string path = TempPath("dd_fault.db");
  auto disk_db = DiskDatabase::Create(path, *data.database, /*num_frames=*/2);
  ASSERT_TRUE(disk_db.ok());
  (*disk_db)->disk().set_read_fault(
      [](PageId) { return InternalError("injected"); });
  PredId pred = (*disk_db)->NonEmptyPredicates().front();
  Status status =
      (*disk_db)->Scan(pred, [](std::span<const uint32_t>) { return true; });
  // The relation is large and the pool tiny, so the scan must hit the disk
  // and observe the fault.
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------------------
// Disk shape finders agree with the in-memory implementations.

class DiskShapeFinderTest : public testing::TestWithParam<uint64_t> {};

TEST_P(DiskShapeFinderTest, AgreesWithRowStoreFinders) {
  GeneratedData data = MakeData(5, 60, GetParam());
  std::string path = TempPath("dsf_" + std::to_string(GetParam()) + ".db");
  auto disk_db = DiskDatabase::Create(path, *data.database, /*num_frames=*/8);
  ASSERT_TRUE(disk_db.ok());

  storage::Catalog catalog(data.database.get());
  std::vector<Shape> expected = storage::FindShapesInMemory(catalog);

  auto scan = FindShapesOnDiskScan(**disk_db);
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_EQ(*scan, expected);

  auto exists = FindShapesOnDiskExists(**disk_db);
  ASSERT_TRUE(exists.ok()) << exists.status();
  EXPECT_EQ(*exists, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiskShapeFinderTest,
                         testing::Values(1, 2, 3, 4, 5, 101, 202, 303));

// Measures page reads of both finders on a relation built by `fill`.
std::pair<uint64_t, uint64_t> MeasureFinderReads(const Database& db,
                                                 const std::string& path) {
  auto disk_db = DiskDatabase::Create(path, db, /*num_frames=*/4);
  EXPECT_TRUE(disk_db.ok());

  (*disk_db)->disk().stats().Reset();
  auto scan = FindShapesOnDiskScan(**disk_db);
  EXPECT_TRUE(scan.ok());
  uint64_t scan_reads = (*disk_db)->disk().stats().pages_read;

  (*disk_db)->disk().stats().Reset();
  auto exists = FindShapesOnDiskExists(**disk_db);
  EXPECT_TRUE(exists.ok());
  uint64_t exists_reads = (*disk_db)->disk().stats().pages_read;

  EXPECT_EQ(*scan, *exists);
  return {scan_reads, exists_reads};
}

TEST(DiskShapeFinderTest, ExistsModeWinsWhenAllShapesAppearEarly) {
  // Both shapes of the arity-2 relation occur within the first page, so
  // every exists query (relaxed and full) early-exits there, while the scan
  // mode must read the whole heap chain.
  Schema schema;
  auto pred = schema.AddPredicate("r", 2);
  ASSERT_TRUE(pred.ok());
  Database db(&schema);
  db.EnsureAnonymousDomain(10000);
  for (uint32_t i = 0; i < 5000; ++i) {
    std::vector<uint32_t> tuple =
        i % 2 == 0 ? std::vector<uint32_t>{i, i}          // shape (1,1)
                   : std::vector<uint32_t>{i, i + 1};      // shape (1,2)
    ASSERT_TRUE(db.AddFact(*pred, tuple).ok());
  }
  auto [scan_reads, exists_reads] =
      MeasureFinderReads(db, TempPath("dsf_early.db"));
  EXPECT_LT(exists_reads, scan_reads);
}

TEST(DiskShapeFinderTest, ExistsModeLosesWhenQueriesComeUpEmpty) {
  // Every tuple has shape (1,1,2): the queries for absent shapes (and the
  // failing relaxed queries that would prune them) must scan the entire
  // relation once each, so exists mode reads more pages than one scan. This
  // is the regime where the paper prefers the in-memory implementation.
  Schema schema;
  auto pred = schema.AddPredicate("r", 3);
  ASSERT_TRUE(pred.ok());
  Database db(&schema);
  db.EnsureAnonymousDomain(10000);
  for (uint32_t i = 0; i < 5000; ++i) {
    std::vector<uint32_t> tuple = {i, i, i + 1};
    ASSERT_TRUE(db.AddFact(*pred, tuple).ok());
  }
  auto [scan_reads, exists_reads] =
      MeasureFinderReads(db, TempPath("dsf_empty.db"));
  EXPECT_GT(exists_reads, scan_reads);
}

}  // namespace
}  // namespace pager
}  // namespace chase
