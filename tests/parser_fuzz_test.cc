// Robustness fuzzing of the rule/data parser and the query parser: random
// token soups and random mutations of valid programs must produce a Status,
// never a crash, hang, or accepted garbage — and valid programs must
// round-trip through the printer byte-for-byte semantically.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "gen/data_generator.h"
#include "gen/tgd_generator.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "query/conjunctive_query.h"

namespace chase {
namespace {

// Token pool skewed towards syntactically meaningful fragments so the fuzz
// reaches deep parser states instead of failing at the first byte.
const char* kTokens[] = {
    "r",  "s",   "emp", "X",  "Y",  "Z",  "?v", "_",   "a",  "b",  "c",
    "(",  ")",   ",",   ".",  "->", ":-", "%",  "\n",  " ",  "42", "'q'",
    "exists", ":", "\"str\"", "-",  ">",  "((", "))",  "..", "@",  "#",
};

std::string RandomTokenSoup(Rng* rng, int max_tokens) {
  std::string text;
  const int n = 1 + static_cast<int>(rng->Below(max_tokens));
  for (int i = 0; i < n; ++i) {
    text += kTokens[rng->Below(std::size(kTokens))];
  }
  return text;
}

TEST(ParserFuzzTest, TokenSoupNeverCrashes) {
  Rng rng(123);
  int parsed_ok = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    std::string text = RandomTokenSoup(&rng, 40);
    auto program = ParseProgram(text);
    parsed_ok += program.ok();
    if (!program.ok()) {
      EXPECT_FALSE(program.status().message().empty()) << text;
    }
  }
  // Sanity: the soup is garbage almost always.
  EXPECT_LT(parsed_ok, 2500);
}

TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(456);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string text;
    const int n = static_cast<int>(rng.Below(120));
    for (int i = 0; i < n; ++i) {
      text += static_cast<char>(1 + rng.Below(255));
    }
    auto program = ParseProgram(text);
    (void)program;  // any Status is fine; crashing is not
  }
}

TEST(ParserFuzzTest, MutatedValidProgramsNeverCrash) {
  Rng rng(789);
  const std::string base = R"(
    person(alice). person(bob).
    hasParent(X, Y) -> person(Y).
    person(X) -> exists Z : hasParent(X, Z).
  )";
  for (int trial = 0; trial < 3000; ++trial) {
    std::string text = base;
    const int mutations = 1 + static_cast<int>(rng.Below(4));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.Below(text.size());
      switch (rng.Below(3)) {
        case 0:  // flip
          text[pos] = static_cast<char>(1 + rng.Below(126));
          break;
        case 1:  // delete
          text.erase(pos, 1);
          break;
        default:  // duplicate
          text.insert(pos, 1, text[pos]);
          break;
      }
    }
    auto program = ParseProgram(text);
    (void)program;
  }
}

TEST(ParserFuzzTest, QueryTokenSoupNeverCrashes) {
  Rng rng(321);
  for (int trial = 0; trial < 3000; ++trial) {
    Schema schema;
    std::string text = RandomTokenSoup(&rng, 25);
    auto cq = query::ParseQuery(text, &schema);
    (void)cq;
  }
}

// Printer -> parser round trip on generated workloads: the printed program
// re-parses to an identical rule set and database.
class RoundTripTest : public testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripTest, GeneratedProgramsRoundTripThroughText) {
  Rng rng(GetParam());
  DataGenParams data_params;
  data_params.preds = 6;
  data_params.min_arity = 1;
  data_params.max_arity = 5;
  data_params.dsize = 200;
  data_params.rsize = 30;
  data_params.seed = rng.Next();
  auto data = GenerateData(data_params);
  ASSERT_TRUE(data.ok());
  TgdGenParams tgd_params;
  tgd_params.ssize = 6;
  tgd_params.min_arity = 1;
  tgd_params.max_arity = 5;
  tgd_params.tsize = 40;
  tgd_params.tclass =
      GetParam() % 2 == 0 ? TgdClass::kLinear : TgdClass::kSimpleLinear;
  tgd_params.seed = rng.Next();
  auto tgds = GenerateTgds(*data->schema, tgd_params);
  ASSERT_TRUE(tgds.ok());

  std::ostringstream out;
  PrintDatabase(*data->database, out);
  PrintTgds(*data->schema, tgds.value(), out);

  auto reparsed = ParseProgram(out.str());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->database->TotalFacts(), data->database->TotalFacts());
  ASSERT_EQ(reparsed->tgds.size(), tgds->size());
  // Rule-by-rule equality holds modulo predicate ids; compare re-printed
  // text, which is canonical.
  std::ostringstream again;
  PrintDatabase(*reparsed->database, again);
  PrintTgds(*reparsed->schema, reparsed->tgds, again);
  EXPECT_EQ(out.str(), again.str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripTest,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace chase
