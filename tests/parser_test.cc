#include <gtest/gtest.h>

#include <sstream>

#include "logic/parser.h"
#include "logic/printer.h"

namespace chase {
namespace {

TEST(ParserTest, ParsesSingleRule) {
  auto program = ParseProgram("r(X,Y) -> s(Y,Z).");
  ASSERT_TRUE(program.ok());
  ASSERT_EQ(program->tgds.size(), 1u);
  const Tgd& tgd = program->tgds[0];
  EXPECT_TRUE(tgd.IsSimpleLinear());
  EXPECT_EQ(tgd.num_universal(), 2u);
  EXPECT_EQ(tgd.num_existential(), 1u);
  EXPECT_EQ(tgd.frontier(), (std::vector<VarId>{1}));
  EXPECT_EQ(program->schema->NumPredicates(), 2u);
}

TEST(ParserTest, ParsesFacts) {
  auto program = ParseProgram("r(a,b). r(b,c). s(a).");
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(program->tgds.empty());
  EXPECT_EQ(program->database->TotalFacts(), 3u);
  const PredId r = program->schema->FindPredicate("r").value();
  EXPECT_EQ(program->database->NumTuples(r), 2u);
}

TEST(ParserTest, MixedRulesAndFacts) {
  auto program = ParseProgram(R"(
    % a comment
    person(alice).
    person(bob).
    person(X) -> hasParent(X, Y), person(Y).  # existential Y
  )");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->tgds.size(), 1u);
  EXPECT_EQ(program->database->TotalFacts(), 2u);
  EXPECT_EQ(program->tgds[0].head().size(), 2u);
}

TEST(ParserTest, ExplicitExistsAnnotation) {
  auto program = ParseProgram("r(X) -> exists Z : s(X, Z).");
  ASSERT_TRUE(program.ok());
  ASSERT_EQ(program->tgds.size(), 1u);
  EXPECT_EQ(program->tgds[0].num_existential(), 1u);
}

TEST(ParserTest, ExistsListMustBeHeadOnly) {
  auto program = ParseProgram("r(X) -> exists X : s(X, X).");
  EXPECT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("existential"),
            std::string_view::npos);
}

TEST(ParserTest, ExistsVariableMustOccur) {
  auto program = ParseProgram("r(X) -> exists W : s(X, Z).");
  EXPECT_FALSE(program.ok());
}

TEST(ParserTest, MultiAtomBody) {
  auto program = ParseProgram("r(X,Y), s(Y,W) -> t(X, W, Z).");
  ASSERT_TRUE(program.ok());
  const Tgd& tgd = program->tgds[0];
  EXPECT_EQ(tgd.body().size(), 2u);
  EXPECT_FALSE(tgd.IsLinear());
  EXPECT_EQ(tgd.num_universal(), 3u);
  EXPECT_EQ(tgd.num_existential(), 1u);
}

TEST(ParserTest, RepeatedBodyVariableIsLinearNotSimple) {
  auto program = ParseProgram("r(X,X) -> s(X).");
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(program->tgds[0].IsLinear());
  EXPECT_FALSE(program->tgds[0].IsSimpleLinear());
}

TEST(ParserTest, QuestionMarkVariables) {
  auto program = ParseProgram("r(?x, ?y) -> s(?y).");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->tgds[0].num_universal(), 2u);
}

TEST(ParserTest, QuotedAndNumericConstants) {
  auto program = ParseProgram(R"(r("hello world", 42). r('x y', 7).)");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->database->TotalFacts(), 2u);
}

TEST(ParserTest, RejectsConstantInRule) {
  auto program = ParseProgram("r(X, a) -> s(X).");
  EXPECT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("constant"),
            std::string_view::npos);
}

TEST(ParserTest, RejectsVariableInFact) {
  auto program = ParseProgram("r(X, a).");
  EXPECT_FALSE(program.ok());
}

TEST(ParserTest, RejectsArityMismatch) {
  auto program = ParseProgram("r(a,b). r(a).");
  EXPECT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("arity"),
            std::string_view::npos);
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  auto program = ParseProgram("r(a).\nr(b)\nr(c).");
  EXPECT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("line 3"),
            std::string_view::npos);
}

TEST(ParserTest, RejectsMissingDot) {
  EXPECT_FALSE(ParseProgram("r(a,b)").ok());
  EXPECT_FALSE(ParseProgram("r(X) -> s(X)").ok());
}

TEST(ParserTest, RejectsMalformedAtoms) {
  EXPECT_FALSE(ParseProgram("r(.").ok());
  EXPECT_FALSE(ParseProgram("r X).").ok());
  EXPECT_FALSE(ParseProgram("r().").ok());
  EXPECT_FALSE(ParseProgram("-> s(X).").ok());
  EXPECT_FALSE(ParseProgram("r(a,).").ok());
}

TEST(ParserTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseProgram("r(\"abc).").ok());
}

TEST(ParserTest, EmptyAndCommentOnlyPrograms) {
  EXPECT_TRUE(ParseProgram("").ok());
  EXPECT_TRUE(ParseProgram("  \n\t ").ok());
  EXPECT_TRUE(ParseProgram("% only a comment\n# another").ok());
}

TEST(ParserTest, FactsNotAllowedInRuleOnlyMode) {
  Schema schema;
  EXPECT_FALSE(ParseTgds("r(a).", &schema).ok());
}

TEST(ParserTest, ParseTgdsSharesSchema) {
  Schema schema;
  ASSERT_TRUE(schema.AddPredicate("r", 2).ok());
  auto tgds = ParseTgds("r(X,Y) -> r(Y,Z).", &schema);
  ASSERT_TRUE(tgds.ok());
  EXPECT_EQ(schema.NumPredicates(), 1u);
  EXPECT_EQ(tgds->size(), 1u);
}

TEST(ParserTest, ParseTgdSingle) {
  Schema schema;
  auto tgd = ParseTgd("r(X,Y) -> r(Y,X).", &schema);
  ASSERT_TRUE(tgd.ok());
  EXPECT_TRUE(tgd->frontier().size() == 2);
  EXPECT_FALSE(ParseTgd("r(X,Y) -> r(Y,X). r(X,Y) -> r(X,X).", &schema).ok());
}

TEST(PrinterTest, TgdRoundTrip) {
  const std::string source =
      "r(X0,X1) -> s(X1,Z0).\n"
      "t(X0,X0,X1) -> r(X0,X1), t(X1,Z0,Z1).\n";
  auto program = ParseProgram(source);
  ASSERT_TRUE(program.ok());
  const std::string printed =
      TgdsToString(*program->schema, program->tgds);
  auto reparsed = ParseProgram(printed);
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->tgds.size(), program->tgds.size());
  for (size_t i = 0; i < program->tgds.size(); ++i) {
    EXPECT_EQ(reparsed->tgds[i], program->tgds[i]) << "rule " << i;
  }
}

TEST(PrinterTest, DatabaseRoundTrip) {
  auto program = ParseProgram("r(a,b). r(b,b). s(a).");
  ASSERT_TRUE(program.ok());
  std::ostringstream os;
  PrintDatabase(*program->database, os);
  auto reparsed = ParseProgram(os.str());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->database->TotalFacts(), 3u);
}

TEST(PrinterTest, GroundAtomWithNull) {
  auto program = ParseProgram("r(a,b).");
  ASSERT_TRUE(program.ok());
  const PredId r = program->schema->FindPredicate("r").value();
  GroundAtom atom(r, {MakeConstant(0), MakeNull(3)});
  EXPECT_EQ(ToString(*program->schema, *program->database, atom),
            "r(a,_:n3)");
}

TEST(PrinterTest, VariableNames) {
  auto program = ParseProgram("r(A,B) -> s(B,C).");
  ASSERT_TRUE(program.ok());
  const Tgd& tgd = program->tgds[0];
  EXPECT_EQ(VariableName(tgd, 0), "X0");
  EXPECT_EQ(VariableName(tgd, 1), "X1");
  EXPECT_EQ(VariableName(tgd, 2), "Z0");
  EXPECT_EQ(ToString(*program->schema, tgd), "r(X0,X1) -> s(X1,Z0).");
}

TEST(ParserTest, LargeRuleSetParses) {
  std::string source;
  for (int i = 0; i < 2000; ++i) {
    source += "p" + std::to_string(i % 50) + "(X,Y) -> p" +
              std::to_string((i + 1) % 50) + "(Y,Z).\n";
  }
  auto program = ParseProgram(source);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->tgds.size(), 2000u);
  EXPECT_EQ(program->schema->NumPredicates(), 50u);
}

TEST(ParserTest, IncrementalParsing) {
  Program program;
  ASSERT_TRUE(ParseProgramInto("r(a,b).", &program).ok());
  ASSERT_TRUE(ParseProgramInto("r(X,Y) -> r(Y,Z).", &program).ok());
  EXPECT_EQ(program.database->TotalFacts(), 1u);
  EXPECT_EQ(program.tgds.size(), 1u);
}

}  // namespace
}  // namespace chase
