// Randomized property tests tying the whole system together. The central
// invariant is Theorem 3.3 / 3.6: the acyclicity-based checkers must agree
// with the ground truth, which for small random inputs we obtain from the
// materialization-based oracle (semi-oblivious chase with a generous atom
// budget — finite chases of these tiny inputs stay far below it, and
// infinite chases blow past it).

#include <gtest/gtest.h>

#include "base/rng.h"
#include "chase/chase_engine.h"
#include "core/is_chase_finite.h"
#include "core/simplification.h"
#include "core/dynamic_simplification.h"
#include "logic/printer.h"
#include "logic/parser.h"
#include "gen/data_generator.h"
#include "gen/tgd_generator.h"

namespace chase {
namespace {

constexpr uint64_t kOracleBudget = 100000;

struct RandomInput {
  std::unique_ptr<Schema> schema;
  std::unique_ptr<Database> database;
  std::vector<Tgd> tgds;
};

// Builds a small random input: <= 4 predicates of arity <= 3, a handful of
// facts over 3 constants, and <= 5 TGDs of the requested class.
RandomInput MakeRandomInput(Rng& rng, TgdClass tclass) {
  RandomInput input;
  input.schema = std::make_unique<Schema>();
  const uint32_t num_preds = 1 + rng.Below(4);
  std::vector<PredId> preds;
  for (uint32_t i = 0; i < num_preds; ++i) {
    preds.push_back(input.schema
                        ->AddPredicate("p" + std::to_string(i),
                                       1 + rng.Below(3))
                        .value());
  }
  input.database = std::make_unique<Database>(input.schema.get());
  input.database->EnsureAnonymousDomain(3);
  const uint32_t num_facts = rng.Below(5);
  std::vector<uint32_t> tuple;
  for (uint32_t i = 0; i < num_facts; ++i) {
    const PredId pred = preds[rng.Below(preds.size())];
    tuple.clear();
    for (uint32_t j = 0; j < input.schema->Arity(pred); ++j) {
      tuple.push_back(static_cast<uint32_t>(rng.Below(3)));
    }
    EXPECT_TRUE(input.database->AddFact(pred, tuple).ok());
  }
  TgdGenParams params;
  params.ssize = num_preds;
  params.min_arity = 1;
  params.max_arity = 3;
  params.tsize = 1 + rng.Below(5);
  params.tclass = tclass;
  params.existential_percent = 35;
  params.seed = rng.Next();
  auto tgds = GenerateTgds(*input.schema, params);
  EXPECT_TRUE(tgds.ok()) << tgds.status();
  input.tgds = std::move(tgds).value();
  return input;
}

// Ground truth via bounded semi-oblivious chase. A chase that exhausts the
// first budget and contradicts the checker verdict is re-run with a 20x
// budget before being declared infinite, so a large-but-finite chase cannot
// fool the oracle at this input scale; when the checker already agrees the
// chase is infinite the retry proves nothing and is skipped.
std::optional<bool> ChaseOracle(const Database& db,
                                const std::vector<Tgd>& tgds,
                                bool checker_verdict) {
  ChaseOptions options;
  options.variant = ChaseVariant::kSemiOblivious;
  options.max_atoms = kOracleBudget;
  auto result = RunChase(db, tgds, options);
  EXPECT_TRUE(result.ok());
  if (!result.ok()) return std::nullopt;
  if (result->outcome == ChaseOutcome::kFixpoint) return true;
  if (!checker_verdict) return false;
  options.max_atoms = 20 * kOracleBudget;
  auto retry = RunChase(db, tgds, options);
  EXPECT_TRUE(retry.ok());
  if (!retry.ok()) return std::nullopt;
  return retry->outcome == ChaseOutcome::kFixpoint;
}

std::string Describe(const RandomInput& input) {
  std::string out = TgdsToString(*input.schema, input.tgds);
  std::ostringstream db;
  PrintDatabase(*input.database, db);
  return out + "---\n" + db.str();
}

TEST(PropertyTest, SlCheckerMatchesChaseOracle) {
  Rng rng(20240612);
  int infinite_cases = 0;
  for (int trial = 0; trial < 400; ++trial) {
    RandomInput input = MakeRandomInput(rng, TgdClass::kSimpleLinear);
    auto verdict = IsChaseFiniteSL(*input.database, input.tgds);
    ASSERT_TRUE(verdict.ok()) << verdict.status();
    auto oracle = ChaseOracle(*input.database, input.tgds, verdict.value());
    ASSERT_TRUE(oracle.has_value());
    EXPECT_EQ(verdict.value(), *oracle)
        << "trial " << trial << "\n" << Describe(input);
    infinite_cases += !*oracle;
  }
  // The sample must exercise both verdicts to mean anything.
  EXPECT_GT(infinite_cases, 20);
  EXPECT_LT(infinite_cases, 380);
}

TEST(PropertyTest, LCheckerMatchesChaseOracle) {
  Rng rng(987654321);
  int infinite_cases = 0;
  for (int trial = 0; trial < 400; ++trial) {
    RandomInput input = MakeRandomInput(rng, TgdClass::kLinear);
    auto verdict = IsChaseFiniteL(*input.database, input.tgds);
    ASSERT_TRUE(verdict.ok()) << verdict.status();
    auto oracle = ChaseOracle(*input.database, input.tgds, verdict.value());
    ASSERT_TRUE(oracle.has_value());
    EXPECT_EQ(verdict.value(), *oracle)
        << "trial " << trial << "\n" << Describe(input);
    infinite_cases += !*oracle;
  }
  EXPECT_GT(infinite_cases, 20);
  EXPECT_LT(infinite_cases, 380);
}

TEST(PropertyTest, LCheckerAgreesWithSlCheckerOnSimpleLinear) {
  Rng rng(555);
  for (int trial = 0; trial < 300; ++trial) {
    RandomInput input = MakeRandomInput(rng, TgdClass::kSimpleLinear);
    auto sl = IsChaseFiniteSL(*input.database, input.tgds);
    auto l = IsChaseFiniteL(*input.database, input.tgds);
    ASSERT_TRUE(sl.ok());
    ASSERT_TRUE(l.ok());
    EXPECT_EQ(sl.value(), l.value())
        << "trial " << trial << "\n" << Describe(input);
  }
}

TEST(PropertyTest, StaticAndDynamicLCheckersAgree) {
  Rng rng(777);
  for (int trial = 0; trial < 200; ++trial) {
    RandomInput input = MakeRandomInput(rng, TgdClass::kLinear);
    auto dynamic = IsChaseFiniteL(*input.database, input.tgds);
    auto static_check = IsChaseFiniteLStatic(*input.database, input.tgds);
    ASSERT_TRUE(dynamic.ok());
    ASSERT_TRUE(static_check.ok());
    EXPECT_EQ(dynamic.value(), static_check.value())
        << "trial " << trial << "\n" << Describe(input);
  }
}

TEST(PropertyTest, BothShapeFinderModesGiveSameVerdict) {
  Rng rng(31337);
  for (int trial = 0; trial < 200; ++trial) {
    RandomInput input = MakeRandomInput(rng, TgdClass::kLinear);
    LCheckOptions in_memory{storage::ShapeFinderMode::kInMemory};
    LCheckOptions in_db{storage::ShapeFinderMode::kInDatabase};
    auto a = IsChaseFiniteL(*input.database, input.tgds, in_memory);
    auto b = IsChaseFiniteL(*input.database, input.tgds, in_db);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value(), b.value()) << Describe(input);
  }
}

TEST(PropertyTest, DynamicSimplificationSubsetOfStatic) {
  Rng rng(4242);
  for (int trial = 0; trial < 150; ++trial) {
    RandomInput input = MakeRandomInput(rng, TgdClass::kLinear);
    auto dynamic = DynamicSimplification(*input.database, input.tgds);
    auto full = StaticSimplification(*input.schema, input.tgds);
    ASSERT_TRUE(dynamic.ok());
    ASSERT_TRUE(full.ok());
    EXPECT_LE(dynamic->tgds.size(), full->tgds.size()) << Describe(input);
    // Canonical containment check by printed form.
    std::set<std::string> static_rules;
    for (const Tgd& tgd : full->tgds) {
      static_rules.insert(ToString(full->shape_schema->schema(), tgd));
    }
    for (const Tgd& tgd : dynamic->tgds) {
      EXPECT_TRUE(static_rules.count(
          ToString(dynamic->shape_schema->schema(), tgd)))
          << Describe(input);
    }
  }
}

TEST(PropertyTest, FiniteChaseResultSatisfiesRules) {
  Rng rng(808);
  int checked = 0;
  for (int trial = 0; trial < 150; ++trial) {
    RandomInput input = MakeRandomInput(rng, TgdClass::kLinear);
    ChaseOptions options;
    options.max_atoms = kOracleBudget;
    auto result = RunChase(*input.database, input.tgds, options);
    ASSERT_TRUE(result.ok());
    if (result->outcome != ChaseOutcome::kFixpoint) continue;
    EXPECT_TRUE(Satisfies(result->instance, input.tgds)) << Describe(input);
    ++checked;
  }
  EXPECT_GT(checked, 30);
}

TEST(PropertyTest, ChaseVariantSizeOrdering) {
  Rng rng(606);
  int checked = 0;
  for (int trial = 0; trial < 100; ++trial) {
    RandomInput input = MakeRandomInput(rng, TgdClass::kSimpleLinear);
    ChaseOptions options;
    options.max_atoms = 20000;
    options.variant = ChaseVariant::kOblivious;
    auto oblivious = RunChase(*input.database, input.tgds, options);
    ASSERT_TRUE(oblivious.ok());
    if (oblivious->outcome != ChaseOutcome::kFixpoint) continue;
    options.variant = ChaseVariant::kSemiOblivious;
    auto semi = RunChase(*input.database, input.tgds, options);
    options.variant = ChaseVariant::kRestricted;
    auto restricted = RunChase(*input.database, input.tgds, options);
    ASSERT_TRUE(semi.ok());
    ASSERT_TRUE(restricted.ok());
    ASSERT_EQ(semi->outcome, ChaseOutcome::kFixpoint);
    ASSERT_EQ(restricted->outcome, ChaseOutcome::kFixpoint);
    EXPECT_LE(semi->instance.NumAtoms(), oblivious->instance.NumAtoms());
    EXPECT_LE(restricted->instance.NumAtoms(), semi->instance.NumAtoms());
    ++checked;
  }
  EXPECT_GT(checked, 20);
}

TEST(PropertyTest, ParserPrinterRoundTripOnGeneratedRules) {
  Rng rng(909);
  for (int trial = 0; trial < 50; ++trial) {
    RandomInput input = MakeRandomInput(rng, TgdClass::kLinear);
    const std::string text = TgdsToString(*input.schema, input.tgds);
    Schema fresh;
    auto reparsed = ParseTgds(text, &fresh);
    ASSERT_TRUE(reparsed.ok()) << text;
    ASSERT_EQ(reparsed->size(), input.tgds.size());
    const std::string reprinted = TgdsToString(fresh, reparsed.value());
    EXPECT_EQ(text, reprinted);
  }
}

}  // namespace
}  // namespace chase
