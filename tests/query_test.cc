#include <string>

#include <gtest/gtest.h>

#include "logic/parser.h"
#include "query/conjunctive_query.h"

namespace chase {
namespace query {
namespace {

Program MustParse(const std::string& text) {
  auto program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(program).value();
}

ConjunctiveQuery MustParseQuery(const std::string& text, Schema* schema) {
  auto cq = ParseQuery(text, schema);
  EXPECT_TRUE(cq.ok()) << cq.status();
  return std::move(cq).value();
}

// ---------------------------------------------------------------------------
// Parsing

TEST(QueryParseTest, SimpleQuery) {
  Schema schema;
  ConjunctiveQuery cq =
      MustParseQuery("q(X, Y) :- r(X, Z), s(Z, Y).", &schema);
  EXPECT_EQ(cq.name, "q");
  EXPECT_EQ(cq.arity(), 2u);
  EXPECT_EQ(cq.body.size(), 2u);
  EXPECT_EQ(cq.num_vars, 3u);  // X, Y, Z
  EXPECT_TRUE(schema.FindPredicate("r").has_value());
  EXPECT_TRUE(schema.FindPredicate("s").has_value());
}

TEST(QueryParseTest, BooleanQuery) {
  Schema schema;
  ConjunctiveQuery cq = MustParseQuery("q() :- r(X, X).", &schema);
  EXPECT_TRUE(cq.IsBoolean());
  EXPECT_EQ(cq.body.size(), 1u);
  EXPECT_EQ(cq.num_vars, 1u);
}

TEST(QueryParseTest, RepeatedVariablesShareIds) {
  Schema schema;
  ConjunctiveQuery cq = MustParseQuery("q(X) :- r(X, X).", &schema);
  EXPECT_EQ(cq.num_vars, 1u);
  EXPECT_EQ(cq.body[0].args[0], cq.body[0].args[1]);
}

TEST(QueryParseTest, UnsafeQueryRejected) {
  Schema schema;
  auto cq = ParseQuery("q(X, Y) :- r(X, Z).", &schema);
  EXPECT_EQ(cq.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryParseTest, ConstantsRejected) {
  Schema schema;
  auto cq = ParseQuery("q(X) :- r(X, alice).", &schema);
  EXPECT_EQ(cq.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryParseTest, MissingTurnstileRejected) {
  Schema schema;
  auto cq = ParseQuery("q(X) <- r(X).", &schema);
  EXPECT_EQ(cq.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryParseTest, ArityMismatchRejected) {
  Schema schema;
  ASSERT_TRUE(schema.AddPredicate("r", 3).ok());
  auto cq = ParseQuery("q(X) :- r(X, Y).", &schema);
  EXPECT_FALSE(cq.ok());
}

TEST(QueryParseTest, TrailingInputRejected) {
  Schema schema;
  auto cq = ParseQuery("q(X) :- r(X). extra", &schema);
  EXPECT_EQ(cq.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Evaluation on databases

TEST(QueryEvalTest, JoinOverDatabase) {
  Program p = MustParse(R"(
    parent(ann, bob). parent(bob, carl). parent(carl, dana).
  )");
  ConjunctiveQuery cq = MustParseQuery(
      "grandparent(X, Z) :- parent(X, Y), parent(Y, Z).", p.schema.get());
  std::vector<Answer> answers = Evaluate(*p.database, cq);
  ASSERT_EQ(answers.size(), 2u);  // (ann,carl), (bob,dana)
}

TEST(QueryEvalTest, RepeatedVariableFiltersTuples) {
  Program p = MustParse("r(a, a). r(a, b). r(b, b).");
  ConjunctiveQuery cq = MustParseQuery("q(X) :- r(X, X).", p.schema.get());
  std::vector<Answer> answers = Evaluate(*p.database, cq);
  EXPECT_EQ(answers.size(), 2u);  // a and b
}

TEST(QueryEvalTest, BooleanQueryMatchesOnce) {
  Program p = MustParse("r(a, b). r(c, d).");
  ConjunctiveQuery cq = MustParseQuery("q() :- r(X, Y).", p.schema.get());
  std::vector<Answer> answers = Evaluate(*p.database, cq);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_TRUE(answers[0].empty());
}

TEST(QueryEvalTest, EmptyWhenNoMatch) {
  Program p = MustParse("r(a, b).");
  ConjunctiveQuery cq = MustParseQuery("q(X) :- r(X, X).", p.schema.get());
  EXPECT_TRUE(Evaluate(*p.database, cq).empty());
}

TEST(QueryEvalTest, CrossProductCounts) {
  Program p = MustParse("r(a). r(b). s(c). s(d).");
  ConjunctiveQuery cq =
      MustParseQuery("q(X, Y) :- r(X), s(Y).", p.schema.get());
  EXPECT_EQ(Evaluate(*p.database, cq).size(), 4u);
}

// ---------------------------------------------------------------------------
// Certain answers

TEST(CertainAnswersTest, OntologicalInference) {
  // hasParent propagates person, and every person gets an invented ancestor
  // witness; the certain answers include the derived person (bob) but not
  // the invented witnesses (nulls).
  Program p = MustParse(R"(
    person(alice). hasParent(bob, alice).
    hasParent(X, Y) -> person(X), person(Y).
    person(X) -> hasAncestor(X, Y).
  )");
  ConjunctiveQuery cq = MustParseQuery("q(X) :- person(X).", p.schema.get());
  auto result = CertainAnswers(*p.database, p.tgds, cq);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 2u);  // alice, bob — nulls filtered
}

TEST(CertainAnswersTest, Example11PatternIsRejected) {
  // The paper's Example 1.1 ontology pattern: every person has a parent who
  // is a person — the semi-oblivious chase is infinite, and the checker
  // refuses up front instead of materializing forever.
  Program p = MustParse(R"(
    person(alice).
    person(X) -> hasParent(X, Y), person(Y).
  )");
  ConjunctiveQuery cq = MustParseQuery("q(X) :- person(X).", p.schema.get());
  auto result = CertainAnswers(*p.database, p.tgds, cq);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CertainAnswersTest, NullsWitnessExistenceInBooleanQueries) {
  Program p = MustParse(R"(
    person(alice).
    person(X) -> hasParent(X, Y).
  )");
  ConjunctiveQuery has_parent = MustParseQuery(
      "q() :- hasParent(X, Y).", p.schema.get());
  auto result = CertainAnswers(*p.database, p.tgds, has_parent);
  ASSERT_TRUE(result.ok());
  // The Boolean query is certain even though the witness is a null.
  EXPECT_EQ(result->answers.size(), 1u);
}

TEST(CertainAnswersTest, InfiniteChaseRejected) {
  Program p = MustParse("e(a, b).\ne(X, Y) -> e(Y, Z).");
  ConjunctiveQuery cq = MustParseQuery("q(X) :- e(X, Y).", p.schema.get());
  auto result = CertainAnswers(*p.database, p.tgds, cq);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CertainAnswersTest, AnswersOnDatabaseAreSubsetOfCertainAnswers) {
  Program p = MustParse(R"(
    emp(a). emp(b). works(a, d1).
    emp(X) -> works(X, D).
    works(X, D) -> dept(D).
  )");
  ConjunctiveQuery cq = MustParseQuery(
      "q(X) :- works(X, D), dept(D).", p.schema.get());
  std::vector<Answer> base = Evaluate(*p.database, cq);
  auto certain = CertainAnswers(*p.database, p.tgds, cq);
  ASSERT_TRUE(certain.ok());
  // Monotonicity: evaluating before the chase only misses answers. Note the
  // base evaluation lacks dept(d1).
  EXPECT_TRUE(base.empty());
  ASSERT_EQ(certain->answers.size(), 2u);
}

TEST(CertainAnswersTest, NonLinearGuardedByAtomBudget) {
  Program p = MustParse(R"(
    r(a, b). s(b, a).
    r(X, Y), s(Y, X) -> t(X).
  )");
  ConjunctiveQuery cq = MustParseQuery("q(X) :- t(X).", p.schema.get());
  auto result = CertainAnswers(*p.database, p.tgds, cq);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 1u);
}

TEST(CertainAnswersTest, BudgetExhaustionReported) {
  // Non-linear and non-terminating: the checkers do not apply, so the atom
  // budget must stop the materialization.
  Program p = MustParse(R"(
    e(a, b). g(a).
    e(X, Y), g(X) -> e(Y, Z), g(Y).
  )");
  ConjunctiveQuery cq = MustParseQuery("q(X) :- g(X).", p.schema.get());
  CertainAnswersOptions options;
  options.max_atoms = 50;
  auto result = CertainAnswers(*p.database, p.tgds, cq, options);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace query
}  // namespace chase
