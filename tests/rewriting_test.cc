#include <string>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "chase/chase_engine.h"
#include "gen/tgd_generator.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "query/conjunctive_query.h"
#include "query/rewriting.h"

namespace chase {
namespace query {
namespace {

Program MustParse(const std::string& text) {
  auto program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(program).value();
}

ConjunctiveQuery MustParseQuery(const std::string& text, Schema* schema) {
  auto cq = ParseQuery(text, schema);
  EXPECT_TRUE(cq.ok()) << cq.status();
  return std::move(cq).value();
}

UnionOfCqs MustRewrite(const ConjunctiveQuery& cq,
                       const std::vector<Tgd>& tgds) {
  auto rewriting = RewriteUnderTgds(cq, tgds);
  EXPECT_TRUE(rewriting.ok()) << rewriting.status();
  return std::move(rewriting).value();
}

TEST(RewritingTest, EmptyTgdSetYieldsTheQueryItself) {
  Program p = MustParse("r(a, b).");
  ConjunctiveQuery cq = MustParseQuery("q(X) :- r(X, Y).", p.schema.get());
  UnionOfCqs rewriting = MustRewrite(cq, p.tgds);
  EXPECT_EQ(rewriting.disjuncts.size(), 1u);
}

TEST(RewritingTest, ClassHierarchyFoldsIntoTheQuery) {
  Program p = MustParse(R"(
    professor(ada).
    professor(X) -> faculty(X).
    faculty(X) -> person(X).
  )");
  ConjunctiveQuery cq = MustParseQuery("q(X) :- person(X).", p.schema.get());
  UnionOfCqs rewriting = MustRewrite(cq, p.tgds);
  // person ∨ faculty ∨ professor.
  EXPECT_EQ(rewriting.disjuncts.size(), 3u);
  std::vector<Answer> answers = rewriting.Evaluate(*p.database);
  ASSERT_EQ(answers.size(), 1u);  // ada, without running any chase
}

TEST(RewritingTest, ExistentialAbsorbsUnsharedVariable) {
  Program p = MustParse(R"(
    course(cs101).
    course(C) -> taughtBy(C, P).
  )");
  ConjunctiveQuery open = MustParseQuery(
      "q(C) :- taughtBy(C, P).", p.schema.get());
  UnionOfCqs rewriting = MustRewrite(open, p.tgds);
  EXPECT_EQ(rewriting.disjuncts.size(), 2u);  // + q(C) :- course(C)
  EXPECT_EQ(rewriting.Evaluate(*p.database).size(), 1u);

  // The witness position is an answer variable: no absorption, no second
  // disjunct, no answer (the witness is a null).
  ConjunctiveQuery who = MustParseQuery(
      "q2(P) :- taughtBy(C, P).", p.schema.get());
  UnionOfCqs rewriting2 = MustRewrite(who, p.tgds);
  EXPECT_EQ(rewriting2.disjuncts.size(), 1u);
  EXPECT_TRUE(rewriting2.Evaluate(*p.database).empty());
}

TEST(RewritingTest, SharedVariableBlocksAbsorption) {
  // P occurs in two atoms, so it cannot be absorbed by the invented
  // witness of either.
  Program p = MustParse(R"(
    course(cs101).
    course(C) -> taughtBy(C, P).
  )");
  ConjunctiveQuery cq = MustParseQuery(
      "q(C) :- taughtBy(C, P), famous(P).", p.schema.get());
  UnionOfCqs rewriting = MustRewrite(cq, p.tgds);
  EXPECT_EQ(rewriting.disjuncts.size(), 1u);
}

TEST(RewritingTest, RepeatedFrontierVariableMergesQueryVariables) {
  Program p = MustParse(R"(
    r(a).
    r(X) -> s(X, X).
  )");
  ConjunctiveQuery cq = MustParseQuery("q(A, B) :- s(A, B).", p.schema.get());
  UnionOfCqs rewriting = MustRewrite(cq, p.tgds);
  // The rewritten disjunct is q(A, A) :- r(A).
  EXPECT_EQ(rewriting.disjuncts.size(), 2u);
  std::vector<Answer> answers = rewriting.Evaluate(*p.database);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0][0], answers[0][1]);
}

TEST(RewritingTest, RepeatedExistentialRequiresSingleAbsorber) {
  // Head t(X, Z, Z): the two Z positions must absorb via the same query
  // variable or two absorbable variables; q uses two distinct variables
  // that occur nowhere else — both absorbed by ⊥_Z only if equal, so the
  // direct resolution is blocked, but factorizing V=W re-enables it.
  Program p = MustParse(R"(
    r(a).
    r(X) -> t(X, Z, Z).
  )");
  ConjunctiveQuery cq = MustParseQuery(
      "q(X) :- t(X, V, W).", p.schema.get());
  UnionOfCqs rewriting = MustRewrite(cq, p.tgds);
  std::vector<Answer> answers = rewriting.Evaluate(*p.database);
  ASSERT_EQ(answers.size(), 1u);  // certain: the chase has t(a, ⊥, ⊥)
}

TEST(RewritingTest, AnswersOnInfiniteChaseInputs) {
  // The chase of this input is infinite, so materialization-based
  // answering is impossible — rewriting still answers.
  Program p = MustParse(R"(
    e(a, b).
    e(X, Y) -> e(Y, Z).
  )");
  ConjunctiveQuery two_hops = MustParseQuery(
      "q() :- e(U, V), e(V, W).", p.schema.get());
  UnionOfCqs rewriting = MustRewrite(two_hops, p.tgds);
  std::vector<Answer> answers = rewriting.Evaluate(*p.database);
  // Certain: e(a,b) and the invented e(b, ⊥1) chain.
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_TRUE(answers[0].empty());
}

TEST(RewritingTest, MultiHeadRejected) {
  Program p = MustParse("r(X) -> s(X, Z), t(Z).");
  ConjunctiveQuery cq = MustParseQuery("q(X) :- s(X, Y).", p.schema.get());
  auto rewriting = RewriteUnderTgds(cq, p.tgds);
  EXPECT_EQ(rewriting.status().code(), StatusCode::kInvalidArgument);
}

TEST(RewritingTest, BudgetExhaustionReported) {
  Program p = MustParse(R"(
    a0(X) -> b(X, Z).
    a1(X) -> b(X, Z).
    a2(X) -> b(X, Z).
    b(X, Y) -> a0(Y).
    b(X, Y) -> a1(Y).
    b(X, Y) -> a2(Y).
  )");
  ConjunctiveQuery cq = MustParseQuery(
      "q() :- b(X1, X2), b(X2, X3), b(X3, X4), b(X4, X5).", p.schema.get());
  RewriteOptions options;
  options.max_queries = 5;
  auto rewriting = RewriteUnderTgds(cq, p.tgds, options);
  EXPECT_EQ(rewriting.status().code(), StatusCode::kResourceExhausted);
}

// Property: on random single-head linear TGDs and random queries, the
// rewriting evaluated over D alone equals the certain answers computed by
// materializing the chase — exactly when the chase terminates; when it
// does not, the answers over a bounded chase prefix are a subset of the
// rewriting's answers.
class RewritingPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(RewritingPropertyTest, AgreesWithChaseBasedCertainAnswers) {
  Rng rng(GetParam());
  int terminating = 0, diverging = 0;
  for (int trial = 0; trial < 120; ++trial) {
    Program p;
    const uint32_t num_preds = 2 + static_cast<uint32_t>(rng.Below(3));
    for (uint32_t i = 0; i < num_preds; ++i) {
      ASSERT_TRUE(p.schema
                      ->AddPredicate("p" + std::to_string(i),
                                     1 + static_cast<uint32_t>(rng.Below(3)))
                      .ok());
    }
    TgdGenParams params;
    params.ssize = num_preds;
    params.min_arity = 1;
    params.max_arity = 3;
    params.tsize = 1 + rng.Below(3);
    params.tclass = TgdClass::kLinear;
    params.existential_percent = 30;
    params.seed = rng.Next();
    auto tgds = GenerateTgds(*p.schema, params);
    ASSERT_TRUE(tgds.ok());
    p.tgds = std::move(tgds).value();

    // Small database.
    p.database->EnsureAnonymousDomain(3);
    for (PredId pred = 0; pred < num_preds; ++pred) {
      const uint32_t arity = p.schema->Arity(pred);
      for (int row = 0; row < 2; ++row) {
        std::vector<uint32_t> tuple(arity);
        for (uint32_t& v : tuple) {
          v = static_cast<uint32_t>(rng.Below(3));
        }
        ASSERT_TRUE(p.database->AddFact(pred, tuple).ok());
      }
    }

    // Random query: 1-2 atoms, answer vars = the shared prefix.
    ConjunctiveQuery cq;
    cq.name = "q";
    const int num_atoms = 1 + static_cast<int>(rng.Below(2));
    for (int a = 0; a < num_atoms; ++a) {
      const PredId pred = static_cast<PredId>(rng.Below(num_preds));
      const uint32_t arity = p.schema->Arity(pred);
      std::vector<VarId> args(arity);
      for (uint32_t& v : args) {
        // A small variable pool induces sharing between atoms.
        v = static_cast<VarId>(rng.Below(4));
        cq.num_vars = std::max(cq.num_vars, v + 1);
      }
      cq.body.emplace_back(pred, std::move(args));
    }
    if (rng.Below(2) == 0) {
      // One answer variable drawn from the body.
      const RuleAtom& atom = cq.body[0];
      cq.answer_vars.push_back(atom.args[rng.Below(atom.args.size())]);
    }

    RewriteOptions options;
    options.max_queries = 5'000;
    auto rewriting = RewriteUnderTgds(cq, p.tgds, options);
    if (rewriting.status().code() == StatusCode::kResourceExhausted) {
      continue;  // rare exponential blow-up; soundness is tested elsewhere
    }
    ASSERT_TRUE(rewriting.ok()) << rewriting.status();
    std::vector<Answer> rewritten_answers =
        rewriting->Evaluate(*p.database);

    ChaseOptions chase_options;
    chase_options.max_atoms = 4'000;
    auto chased = RunChase(*p.database, p.tgds, chase_options);
    ASSERT_TRUE(chased.ok());
    // Null-free answers over the (possibly partial) materialization.
    std::vector<Answer> chase_answers;
    for (Answer& answer : Evaluate(chased.value().instance, cq)) {
      if (std::none_of(answer.begin(), answer.end(),
                       [](Term t) { return IsNull(t); })) {
        chase_answers.push_back(std::move(answer));
      }
    }

    const std::string description =
        TgdsToString(*p.schema, p.tgds) + " trial " + std::to_string(trial);
    if (chased->outcome == ChaseOutcome::kFixpoint) {
      ++terminating;
      EXPECT_EQ(rewritten_answers, chase_answers) << description;
    } else {
      ++diverging;
      // Prefix answers are certain, so the rewriting must contain them.
      for (const Answer& answer : chase_answers) {
        EXPECT_TRUE(std::binary_search(rewritten_answers.begin(),
                                       rewritten_answers.end(), answer))
            << description;
      }
    }
  }
  EXPECT_GT(terminating, 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewritingPropertyTest,
                         testing::Values(42, 43, 44, 45));

}  // namespace
}  // namespace query
}  // namespace chase
