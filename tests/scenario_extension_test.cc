// Cross-module checks on the Section 9 scenario families: the extension
// modules (acyclicity zoo, shape index, rewriting) run on realistic rule
// sets, not only on the synthetic generator output.

#include <gtest/gtest.h>

#include "acyclicity/joint_acyclicity.h"
#include "acyclicity/super_weak_acyclicity.h"
#include "core/is_chase_finite.h"
#include "core/weak_acyclicity.h"
#include "gen/scenario.h"
#include "query/rewriting.h"
#include "storage/catalog.h"
#include "storage/shape_finder.h"
#include "storage/shape_index.h"

namespace chase {
namespace {

TEST(ScenarioExtensionTest, DeepIsWeaklyAcyclicSoWholeZooAccepts) {
  auto scenario = MakeDeepScenario(4241, /*seed=*/1);
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  const Program& p = scenario->program;
  // Deep is weakly acyclic by construction (the paper uses it as a
  // terminating family); joint acyclicity must accept too.
  EXPECT_TRUE(IsWeaklyAcyclic(*p.schema, p.tgds));
  EXPECT_TRUE(acyclicity::IsJointlyAcyclic(*p.schema, p.tgds));
  // Super-weak acyclicity is quadratic in places per invention site; run it
  // on a truncated prefix of the family (still thousands of places) to keep
  // the test fast. A subset of a WA set is WA, hence SWA.
  std::vector<Tgd> prefix(p.tgds.begin(),
                          p.tgds.begin() + std::min<size_t>(800,
                                                            p.tgds.size()));
  EXPECT_TRUE(acyclicity::IsSuperWeaklyAcyclic(*p.schema, prefix));
}

TEST(ScenarioExtensionTest, ShapeIndexMatchesFindShapesOnLubm) {
  auto scenario = MakeLubmScenario("LUBM-t", /*atoms=*/40'000, /*seed=*/2);
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  const Program& p = scenario->program;
  storage::Catalog catalog(p.database.get());
  storage::ShapeIndex index = storage::ShapeIndex::Build(*p.database);
  EXPECT_EQ(index.CurrentShapes(), storage::FindShapesInMemory(catalog));

  // Index-fed check agrees with the scanning check.
  std::vector<Shape> shapes = index.CurrentShapes();
  LCheckOptions options;
  options.precomputed_shapes = &shapes;
  auto indexed = IsChaseFiniteL(*p.database, p.tgds, options);
  auto scanned = IsChaseFiniteL(*p.database, p.tgds);
  ASSERT_TRUE(indexed.ok());
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(indexed.value(), scanned.value());
}

TEST(ScenarioExtensionTest, LubmAtomicQueriesRewriteFinitely) {
  auto scenario = MakeLubmScenario("LUBM-t", /*atoms=*/10'000, /*seed=*/3);
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  Program& p = scenario->program;
  // Rewrite an atomic query per unary predicate; DL-Lite-style rule sets
  // always admit small finite rewritings.
  size_t rewritten = 0;
  for (PredId pred = 0; pred < p.schema->NumPredicates() && rewritten < 10;
       ++pred) {
    if (p.schema->Arity(pred) != 1) continue;
    query::ConjunctiveQuery cq;
    cq.name = "q";
    cq.num_vars = 1;
    cq.answer_vars = {0};
    cq.body.emplace_back(pred, std::vector<VarId>{0});
    query::RewriteOptions options;
    options.max_queries = 5'000;
    auto rewriting = query::RewriteUnderTgds(cq, p.tgds, options);
    ASSERT_TRUE(rewriting.ok()) << rewriting.status();
    EXPECT_GE(rewriting->disjuncts.size(), 1u);
    ++rewritten;
  }
  EXPECT_GT(rewritten, 0u);
}

TEST(ScenarioExtensionTest, IBenchShapeFindersAgree) {
  IBenchParams params;
  params.name = "STB-t";
  params.atoms = 20'000;
  auto scenario = MakeIBenchScenario(params);
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  const Program& p = scenario->program;
  storage::Catalog mem(p.database.get());
  storage::Catalog db(p.database.get());
  EXPECT_EQ(storage::FindShapesInMemory(mem),
            storage::FindShapesInDatabase(db));
}

}  // namespace
}  // namespace chase
