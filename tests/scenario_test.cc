#include <gtest/gtest.h>

#include "core/is_chase_finite.h"
#include "core/weak_acyclicity.h"
#include "gen/scenario.h"

namespace chase {
namespace {

TEST(DeepScenarioTest, MatchesTable1Statistics) {
  auto scenario = MakeDeepScenario(4241, /*seed=*/1);
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  ScenarioStats stats = ComputeScenarioStats(scenario.value());
  EXPECT_EQ(stats.n_pred, 1299u);
  EXPECT_EQ(stats.min_arity, 4u);
  EXPECT_EQ(stats.max_arity, 4u);
  EXPECT_EQ(stats.n_atoms, 1000u);
  EXPECT_EQ(stats.n_rules, 4241u);
  // One fact per relation with varied shapes: close to 1000 shapes.
  EXPECT_GE(stats.n_shapes, 900u);
  EXPECT_LE(stats.n_shapes, 1000u);
}

TEST(DeepScenarioTest, IsWeaklyAcyclicByConstruction) {
  auto scenario = MakeDeepScenario(4241, /*seed=*/2);
  ASSERT_TRUE(scenario.ok());
  EXPECT_TRUE(AllSimpleLinear(scenario->program.tgds));
  EXPECT_TRUE(IsWeaklyAcyclic(*scenario->program.schema,
                              scenario->program.tgds));
  auto finite = IsChaseFiniteL(*scenario->program.database,
                               scenario->program.tgds);
  ASSERT_TRUE(finite.ok()) << finite.status();
  EXPECT_TRUE(finite.value());
}

TEST(DeepScenarioTest, VariantsDifferInRuleCount) {
  for (uint32_t rules : {4241u, 4541u, 4841u}) {
    auto scenario = MakeDeepScenario(rules, /*seed=*/3);
    ASSERT_TRUE(scenario.ok());
    EXPECT_EQ(scenario->program.tgds.size(), rules);
    EXPECT_EQ(scenario->name, "Deep-" + std::to_string(rules));
  }
}

TEST(LubmScenarioTest, MatchesTable1Statistics) {
  auto scenario = MakeLubmScenario("LUBM-1", /*atoms=*/100000, /*seed=*/4);
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  ScenarioStats stats = ComputeScenarioStats(scenario.value());
  EXPECT_EQ(stats.n_pred, 104u);
  EXPECT_EQ(stats.min_arity, 1u);
  EXPECT_EQ(stats.max_arity, 2u);
  EXPECT_EQ(stats.n_rules, 137u);
  EXPECT_NEAR(static_cast<double>(stats.n_atoms), 100000.0, 1000.0);
  EXPECT_NEAR(static_cast<double>(stats.n_shapes), 30.0, 5.0);
}

TEST(LubmScenarioTest, RulesAreLinearWithNonEmptyFrontier) {
  auto scenario = MakeLubmScenario("LUBM-1", 50000, /*seed=*/5);
  ASSERT_TRUE(scenario.ok());
  EXPECT_TRUE(AllLinear(scenario->program.tgds));
  EXPECT_TRUE(AllHaveNonEmptyFrontier(scenario->program.tgds));
  auto finite = IsChaseFiniteL(*scenario->program.database,
                               scenario->program.tgds);
  EXPECT_TRUE(finite.ok()) << finite.status();
}

TEST(IBenchScenarioTest, Stb128MatchesTable1) {
  auto scenario = MakeStb128Scenario(/*atom_scale=*/0.01, /*seed=*/6);
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  ScenarioStats stats = ComputeScenarioStats(scenario.value());
  EXPECT_EQ(stats.n_pred, 287u);
  EXPECT_EQ(stats.min_arity, 1u);
  EXPECT_EQ(stats.max_arity, 10u);
  EXPECT_EQ(stats.n_rules, 231u);
  EXPECT_EQ(stats.n_shapes, 129u);
}

TEST(IBenchScenarioTest, Ont256MatchesTable1) {
  auto scenario = MakeOnt256Scenario(/*atom_scale=*/0.01, /*seed=*/7);
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  ScenarioStats stats = ComputeScenarioStats(scenario.value());
  EXPECT_EQ(stats.n_pred, 662u);
  EXPECT_EQ(stats.max_arity, 11u);
  EXPECT_EQ(stats.n_rules, 785u);
  EXPECT_EQ(stats.n_shapes, 245u);
}

TEST(IBenchScenarioTest, CheckerRunsEndToEnd) {
  auto scenario = MakeStb128Scenario(/*atom_scale=*/0.005, /*seed=*/8);
  ASSERT_TRUE(scenario.ok());
  LCheckStats stats;
  auto finite = IsChaseFiniteL(*scenario->program.database,
                               scenario->program.tgds, {}, &stats);
  ASSERT_TRUE(finite.ok()) << finite.status();
  EXPECT_GT(stats.num_initial_shapes, 0u);
  EXPECT_GT(stats.num_simplified_tgds, 0u);
}

TEST(ScenarioStatsTest, AtomScaleScalesAtoms) {
  auto small = MakeStb128Scenario(0.001, 9);
  auto large = MakeStb128Scenario(0.01, 9);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_LT(small->program.database->TotalFacts(),
            large->program.database->TotalFacts());
}

}  // namespace
}  // namespace chase
