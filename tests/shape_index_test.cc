#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "core/is_chase_finite.h"
#include "gen/data_generator.h"
#include "gen/tgd_generator.h"
#include "storage/catalog.h"
#include "storage/shape_finder.h"
#include "storage/shape_index.h"

namespace chase {
namespace storage {
namespace {

GeneratedData MakeData(uint32_t preds, uint64_t rsize, uint64_t seed) {
  DataGenParams params;
  params.preds = preds;
  params.min_arity = 1;
  params.max_arity = 5;
  params.dsize = 100;
  params.rsize = rsize;
  params.seed = seed;
  auto data = GenerateData(params);
  EXPECT_TRUE(data.ok()) << data.status();
  return std::move(data).value();
}

TEST(ShapeIndexTest, EmptyIndexHasNoShapes) {
  ShapeIndex index;
  EXPECT_EQ(index.NumShapes(), 0u);
  EXPECT_TRUE(index.CurrentShapes().empty());
}

TEST(ShapeIndexTest, BuildMatchesFindShapes) {
  GeneratedData data = MakeData(6, 80, 99);
  ShapeIndex index = ShapeIndex::Build(*data.database);
  Catalog catalog(data.database.get());
  EXPECT_EQ(index.CurrentShapes(), FindShapesInMemory(catalog));
}

TEST(ShapeIndexTest, InsertAddsShapeOnce) {
  Schema schema;
  auto pred = schema.AddPredicate("r", 3);
  ASSERT_TRUE(pred.ok());
  ShapeIndex index;
  std::vector<uint32_t> t1 = {1, 1, 2};
  std::vector<uint32_t> t2 = {5, 5, 9};  // same shape (1,1,2)
  index.Insert(*pred, t1);
  index.Insert(*pred, t2);
  EXPECT_EQ(index.NumShapes(), 1u);
  EXPECT_EQ(index.Count(Shape(*pred, {1, 1, 2})), 2u);
}

TEST(ShapeIndexTest, RemoveKeepsShapeWhileTuplesRemain) {
  Schema schema;
  auto pred = schema.AddPredicate("r", 2);
  ASSERT_TRUE(pred.ok());
  ShapeIndex index;
  std::vector<uint32_t> t1 = {1, 2};
  std::vector<uint32_t> t2 = {3, 4};
  index.Insert(*pred, t1);
  index.Insert(*pred, t2);
  ASSERT_TRUE(index.Remove(*pred, t1).ok());
  EXPECT_TRUE(index.Contains(Shape(*pred, {1, 2})));
  ASSERT_TRUE(index.Remove(*pred, t2).ok());
  EXPECT_FALSE(index.Contains(Shape(*pred, {1, 2})));
  EXPECT_EQ(index.NumShapes(), 0u);
}

TEST(ShapeIndexTest, RemoveUnindexedShapeFails) {
  Schema schema;
  auto pred = schema.AddPredicate("r", 2);
  ASSERT_TRUE(pred.ok());
  ShapeIndex index;
  std::vector<uint32_t> tuple = {1, 2};
  EXPECT_EQ(index.Remove(*pred, tuple).code(),
            StatusCode::kFailedPrecondition);
}

// Property: after any interleaving of inserts and removes, the index equals
// a recomputation over the surviving tuples.
class ShapeIndexPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(ShapeIndexPropertyTest, MatchesRecomputationUnderChurn) {
  Rng rng(GetParam());
  Schema schema;
  std::vector<PredId> preds;
  for (int i = 0; i < 4; ++i) {
    auto pred = schema.AddPredicate("p" + std::to_string(i),
                                    1 + static_cast<uint32_t>(rng.Below(4)));
    ASSERT_TRUE(pred.ok());
    preds.push_back(*pred);
  }

  ShapeIndex index;
  // Live multiset of tuples per predicate.
  std::vector<std::vector<std::vector<uint32_t>>> live(preds.size());

  for (int step = 0; step < 600; ++step) {
    const size_t which = rng.Below(preds.size());
    PredId pred = preds[which];
    const uint32_t arity = schema.Arity(pred);
    const bool remove = !live[which].empty() && rng.Below(100) < 40;
    if (remove) {
      const size_t victim = rng.Below(live[which].size());
      ASSERT_TRUE(index.Remove(pred, live[which][victim]).ok());
      live[which].erase(live[which].begin() +
                        static_cast<ptrdiff_t>(victim));
    } else {
      std::vector<uint32_t> tuple(arity);
      for (uint32_t& v : tuple) {
        v = static_cast<uint32_t>(rng.Below(6));  // small domain → collisions
      }
      index.Insert(pred, tuple);
      live[which].push_back(std::move(tuple));
    }
  }

  // Recompute from the surviving tuples.
  Database db(&schema);
  db.EnsureAnonymousDomain(6);
  for (size_t which = 0; which < preds.size(); ++which) {
    for (const auto& tuple : live[which]) {
      ASSERT_TRUE(db.AddFact(preds[which], tuple).ok());
    }
  }
  Catalog catalog(&db);
  EXPECT_EQ(index.CurrentShapes(), FindShapesInMemory(catalog));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShapeIndexPropertyTest,
                         testing::Values(11, 22, 33, 44, 55, 66));

// IsChaseFinite[L] fed from the index (Section 10 deployment) agrees with
// the scanning implementation, and reports zero shape-finding work.
class IndexFedCheckTest : public testing::TestWithParam<uint64_t> {};

TEST_P(IndexFedCheckTest, PrecomputedShapesMatchScanningVerdict) {
  Rng rng(GetParam());
  GeneratedData data = MakeData(6, 50, rng.Next());
  TgdGenParams params;
  params.ssize = 6;
  params.min_arity = 1;
  params.max_arity = 5;
  params.tsize = 20;
  params.tclass = TgdClass::kLinear;
  params.seed = rng.Next();
  auto tgds = GenerateTgds(*data.schema, params);
  ASSERT_TRUE(tgds.ok()) << tgds.status();

  auto scanned = IsChaseFiniteL(*data.database, tgds.value());
  ASSERT_TRUE(scanned.ok()) << scanned.status();

  ShapeIndex index = ShapeIndex::Build(*data.database);
  std::vector<Shape> shapes = index.CurrentShapes();
  LCheckOptions options;
  options.precomputed_shapes = &shapes;
  LCheckStats stats;
  auto indexed = IsChaseFiniteL(*data.database, tgds.value(), options,
                                &stats);
  ASSERT_TRUE(indexed.ok()) << indexed.status();
  EXPECT_EQ(indexed.value(), scanned.value());
  EXPECT_EQ(stats.access.tuples_scanned, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexFedCheckTest,
                         testing::Values(3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace storage
}  // namespace chase
