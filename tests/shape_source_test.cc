// Cross-implementation property tests for the ShapeSource layer: every
// (backend, mode, threads) combination of the unified FindShapes — memory
// and disk; scan, exists, and sharded-index plans; serial and
// work-partitioned parallel, including the parallel-disk path no
// pre-ShapeSource code offered — must return the identical sorted
// shape(D), with uniform logical metering.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <string>
#include <vector>

#include "base/rng.h"
#include "gen/data_generator.h"
#include "index/find_shapes.h"
#include "pager/disk_database.h"
#include "pager/disk_shape_source.h"
#include "storage/catalog.h"
#include "storage/shape_finder.h"
#include "storage/shape_source.h"

namespace chase {
namespace {

using storage::ShapeFinderMode;

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

GeneratedData MakeRandomData(Rng* rng) {
  DataGenParams params;
  params.preds = 1 + static_cast<uint32_t>(rng->Below(6));
  params.min_arity = 1;
  params.max_arity = 1 + static_cast<uint32_t>(rng->Below(5));
  // Small domains force repeated constants, so coarse shapes actually occur
  // (64 is the generator's minimum).
  params.dsize = 64 + rng->Below(150);
  params.rsize = rng->Below(800);
  params.seed = rng->Next();
  auto data = GenerateData(params);
  EXPECT_TRUE(data.ok()) << data.status();
  return std::move(data).value();
}

TEST(ShapeSourceTest, AllBackendModeThreadCombinationsAgree) {
  Rng rng(20260728);
  for (int trial = 0; trial < 12; ++trial) {
    GeneratedData data = MakeRandomData(&rng);
    storage::Catalog catalog(data.database.get());
    const std::vector<Shape> expected = storage::FindShapesInMemory(catalog);

    const std::string path =
        TempPath("chase_shape_source_" + std::to_string(trial) + ".db");
    auto disk_db = pager::DiskDatabase::Create(path, *data.database,
                                               /*num_frames=*/16);
    ASSERT_TRUE(disk_db.ok()) << disk_db.status();
    storage::MemoryShapeSource memory(&catalog);
    pager::DiskShapeSource disk(disk_db->get());

    for (const storage::ShapeSource* source :
         std::initializer_list<const storage::ShapeSource*>{&memory, &disk}) {
      for (ShapeFinderMode mode :
           {ShapeFinderMode::kScan, ShapeFinderMode::kExists,
            ShapeFinderMode::kIndex}) {
        for (unsigned threads : {1u, 2u, 4u}) {
          auto shapes = index::FindShapes(*source, {mode, threads});
          ASSERT_TRUE(shapes.ok()) << shapes.status();
          EXPECT_EQ(*shapes, expected)
              << "trial " << trial << ", backend " << source->Name()
              << ", mode " << storage::ShapeFinderModeName(mode)
              << ", threads " << threads;
        }
      }
    }
    std::remove(path.c_str());
  }
}

TEST(ShapeSourceTest, DiskRangeScansMatchMemory) {
  Rng rng(424242);
  GeneratedData data = MakeRandomData(&rng);
  const std::string path = TempPath("chase_shape_source_ranges.db");
  // A tiny pool forces the ranged scans through real evictions.
  auto disk_db =
      pager::DiskDatabase::Create(path, *data.database, /*num_frames=*/4);
  ASSERT_TRUE(disk_db.ok()) << disk_db.status();

  storage::Catalog catalog(data.database.get());
  storage::MemoryShapeSource memory(&catalog);
  pager::DiskShapeSource disk(disk_db->get());

  auto collect = [](const storage::ShapeSource& source, PredId pred,
                    uint64_t first, uint64_t count) {
    std::vector<std::vector<uint32_t>> rows;
    EXPECT_TRUE(source
                    .ScanRange(pred, first, count,
                               [&](std::span<const uint32_t> tuple) {
                                 rows.emplace_back(tuple.begin(), tuple.end());
                                 return true;
                               })
                    .ok());
    return rows;
  };

  for (PredId pred : memory.NonEmptyRelations()) {
    const uint64_t rows = memory.NumTuples(pred);
    for (int probe = 0; probe < 16; ++probe) {
      // Ranges both inside and (deliberately) past the end of the relation.
      const uint64_t first = rng.Below(rows + 2);
      const uint64_t count = rng.Below(rows + 2);
      EXPECT_EQ(collect(disk, pred, first, count),
                collect(memory, pred, first, count))
          << "pred " << pred << " range [" << first << ", +" << count << ")";
    }
  }
  std::remove(path.c_str());
}

TEST(ShapeSourceTest, MeteringIsUniformAcrossBackends) {
  Rng rng(77);
  GeneratedData data = MakeRandomData(&rng);
  const std::string path = TempPath("chase_shape_source_metering.db");
  auto disk_db = pager::DiskDatabase::Create(path, *data.database,
                                             /*num_frames=*/16);
  ASSERT_TRUE(disk_db.ok()) << disk_db.status();

  for (ShapeFinderMode mode :
       {ShapeFinderMode::kScan, ShapeFinderMode::kExists,
        ShapeFinderMode::kIndex}) {
    for (unsigned threads : {1u, 4u}) {
      // Fresh sources per run: each carries its own logical counters.
      storage::Catalog catalog(data.database.get());
      storage::MemoryShapeSource memory(&catalog);
      pager::DiskShapeSource disk(disk_db->get());
      ASSERT_TRUE(index::FindShapes(memory, {mode, threads}).ok());
      ASSERT_TRUE(index::FindShapes(disk, {mode, threads}).ok());
      // The plans execute the same logical accesses on both backends: heap
      // order preserves row-store order, so scans and early exits align.
      EXPECT_EQ(memory.stats().tuples_scanned, disk.stats().tuples_scanned);
      EXPECT_EQ(memory.stats().exists_queries, disk.stats().exists_queries);
      EXPECT_EQ(memory.stats().relations_loaded,
                disk.stats().relations_loaded);
      // Physical metering is backend-specific: no I/O in memory, real page
      // reads on disk.
      EXPECT_EQ(memory.Io().pages_read, 0u);
      if (data.database->TotalFacts() > 0) {
        EXPECT_GT(disk.Io().pool_hits + disk.Io().pool_misses, 0u);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(ShapeSourceTest, ProbeRejectsOversizedIdTuplesInsteadOfSmashing) {
  // Schemas cap arity at Schema::kMaxArity, but ProbeShapeExists is public
  // API: an id-tuple longer than its fixed-width scratch must be refused,
  // not written past the arrays.
  Schema schema;
  auto pred = schema.AddPredicate("r", 2);
  ASSERT_TRUE(pred.ok());
  Database db(&schema);
  db.EnsureAnonymousDomain(4);
  std::vector<uint32_t> tuple = {1, 2};
  ASSERT_TRUE(db.AddFact(*pred, tuple).ok());
  storage::Catalog catalog(&db);
  storage::MemoryShapeSource memory(&catalog);

  IdTuple oversized(Schema::kMaxArity + 10, 1);
  storage::AccessStats stats;
  auto probe =
      storage::ProbeShapeExists(memory, *pred, oversized, false, &stats);
  EXPECT_EQ(probe.status().code(), StatusCode::kInvalidArgument);

  // A maximal legal id-tuple stays accepted (no witness, but no error).
  IdTuple maximal(Schema::kMaxArity, 1);
  auto legal =
      storage::ProbeShapeExists(memory, *pred, maximal, true, &stats);
  ASSERT_TRUE(legal.ok()) << legal.status();
  EXPECT_FALSE(legal.value());
}

TEST(ShapeSourceTest, ParallelDiskScanCountsEveryTupleOnce) {
  Rng rng(31337);
  GeneratedData data = MakeRandomData(&rng);
  const std::string path = TempPath("chase_shape_source_parallel.db");
  auto disk_db =
      pager::DiskDatabase::Create(path, *data.database, /*num_frames=*/8);
  ASSERT_TRUE(disk_db.ok()) << disk_db.status();

  pager::DiskShapeSource disk(disk_db->get());
  auto shapes = index::FindShapes(disk, {ShapeFinderMode::kScan, /*threads=*/4});
  ASSERT_TRUE(shapes.ok()) << shapes.status();
  EXPECT_EQ(disk.stats().tuples_scanned, data.database->TotalFacts());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace chase
