#include <gtest/gtest.h>

#include <set>

#include "core/specialization.h"
#include "logic/schema.h"
#include "logic/shape.h"

namespace chase {
namespace {

template <typename T>
IdTuple Id(std::vector<T> tuple) {
  return IdOf(std::span<const T>(tuple));
}

TEST(ShapeTest, IdOfPaperExample) {
  // Section 3: t̄ = (x, y, x, z, y) gives id(t̄) = (1, 2, 1, 3, 2).
  EXPECT_EQ(Id<int>({10, 20, 10, 30, 20}), (IdTuple{1, 2, 1, 3, 2}));
}

TEST(ShapeTest, UniqueOfPaperExample) {
  std::vector<int> tuple = {10, 20, 10, 30, 20};
  EXPECT_EQ(UniqueOf(std::span<const int>(tuple)),
            (std::vector<int>{10, 20, 30}));
}

TEST(ShapeTest, IdOfEdgeCases) {
  EXPECT_EQ(Id<int>({5}), (IdTuple{1}));
  EXPECT_EQ(Id<int>({5, 5, 5}), (IdTuple{1, 1, 1}));
  EXPECT_EQ(Id<int>({1, 2, 3}), (IdTuple{1, 2, 3}));
}

TEST(ShapeTest, ShapeOfTuple) {
  std::vector<uint32_t> tuple = {4, 4, 9};
  Shape shape = ShapeOfTuple(3, tuple);
  EXPECT_EQ(shape.pred, 3u);
  EXPECT_EQ(shape.id, (IdTuple{1, 1, 2}));
  EXPECT_EQ(shape.NumDistinct(), 2u);
}

TEST(ShapeTest, EqualityAndHash) {
  Shape a(1, {1, 1, 2});
  Shape b(1, {1, 1, 2});
  Shape c(1, {1, 2, 2});
  Shape d(2, {1, 1, 2});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
  ShapeHash hash;
  EXPECT_EQ(hash(a), hash(b));
  ShapeSet set = {a, b, c, d};
  EXPECT_EQ(set.size(), 3u);
}

TEST(ShapeTest, ShapeNameFormatting) {
  Schema schema;
  const PredId r = schema.AddPredicate("r", 3).value();
  EXPECT_EQ(ShapeName(schema, Shape(r, {1, 1, 2})), "r_[1,1,2]");
}

TEST(ShapeTest, EnumerateIdTuplesMatchesBellNumbers) {
  // B(1..6) = 1, 2, 5, 15, 52, 203.
  const uint64_t expected[] = {1, 2, 5, 15, 52, 203};
  for (uint32_t arity = 1; arity <= 6; ++arity) {
    auto tuples = EnumerateIdTuples(arity);
    EXPECT_EQ(tuples.size(), expected[arity - 1]) << "arity " << arity;
    EXPECT_EQ(BellNumber(arity), expected[arity - 1]);
    // All distinct, all valid restricted-growth strings.
    std::set<IdTuple> distinct(tuples.begin(), tuples.end());
    EXPECT_EQ(distinct.size(), tuples.size());
    for (const IdTuple& id : tuples) {
      uint8_t max_seen = 0;
      for (uint8_t v : id) {
        EXPECT_LE(v, max_seen + 1);
        max_seen = std::max(max_seen, v);
      }
      EXPECT_EQ(id[0], 1);
    }
    // Lexicographic order: all-equal first, all-distinct last.
    for (uint32_t i = 0; i < arity; ++i) {
      EXPECT_EQ(tuples.front()[i], 1);
      EXPECT_EQ(tuples.back()[i], i + 1);
    }
    EXPECT_TRUE(std::is_sorted(tuples.begin(), tuples.end()));
  }
}

TEST(ShapeTest, BellNumbersLargeValues) {
  EXPECT_EQ(BellNumber(0), 1u);
  EXPECT_EQ(BellNumber(10), 115975u);
  EXPECT_EQ(BellNumber(11), 678570u);
  // Saturation, not overflow.
  EXPECT_EQ(BellNumber(60), UINT64_MAX);
}

TEST(ShapeTest, CoarserOrEqual) {
  // [1,1,2] merges positions {0,1}; it is coarser than [1,2,3].
  EXPECT_TRUE(CoarserOrEqual({1, 1, 2}, {1, 2, 3}));
  EXPECT_FALSE(CoarserOrEqual({1, 2, 3}, {1, 1, 2}));
  EXPECT_TRUE(CoarserOrEqual({1, 1, 1}, {1, 1, 2}));
  EXPECT_FALSE(CoarserOrEqual({1, 1, 2}, {1, 2, 2}));
  EXPECT_TRUE(CoarserOrEqual({1, 2, 1}, {1, 2, 1}));
}

TEST(ShapeTest, MergeBlocks) {
  EXPECT_EQ(MergeBlocks({1, 2, 3}, 0, 1), (IdTuple{1, 1, 2}));
  EXPECT_EQ(MergeBlocks({1, 2, 3}, 1, 2), (IdTuple{1, 2, 2}));
  EXPECT_EQ(MergeBlocks({1, 2, 3}, 0, 2), (IdTuple{1, 2, 1}));
  EXPECT_EQ(MergeBlocks({1, 2, 1}, 0, 1), (IdTuple{1, 1, 1}));
}

TEST(ShapeTest, MergeBlocksCoversAllCoarserings) {
  // Every coarser partition is reachable by successive merges: check the
  // one-step children of [1,2,3,4] are all distinct and valid.
  IdTuple base = {1, 2, 3, 4};
  std::set<IdTuple> children;
  for (uint32_t i = 0; i < 4; ++i) {
    for (uint32_t j = i + 1; j < 4; ++j) {
      IdTuple child = MergeBlocks(base, i, j);
      EXPECT_TRUE(CoarserOrEqual(child, base));
      children.insert(child);
    }
  }
  EXPECT_EQ(children.size(), 6u);  // C(4,2) distinct single merges
}

TEST(SpecializationTest, CountsAreBellNumbers) {
  EXPECT_EQ(EnumerateSpecializations(0).size(), 1u);
  EXPECT_EQ(EnumerateSpecializations(1).size(), 1u);
  EXPECT_EQ(EnumerateSpecializations(2).size(), 2u);
  EXPECT_EQ(EnumerateSpecializations(3).size(), 5u);
  EXPECT_EQ(EnumerateSpecializations(4).size(), 15u);
  EXPECT_EQ(EnumerateSpecializations(5).size(), 52u);
}

TEST(SpecializationTest, AllValidAndDistinct) {
  auto specs = EnumerateSpecializations(4);
  std::set<Specialization> distinct(specs.begin(), specs.end());
  EXPECT_EQ(distinct.size(), specs.size());
  for (const Specialization& f : specs) {
    EXPECT_TRUE(IsValidSpecialization(f));
  }
}

TEST(SpecializationTest, ValidityChecks) {
  EXPECT_TRUE(IsValidSpecialization({0, 0, 2}));
  EXPECT_TRUE(IsValidSpecialization({0, 1, 1}));
  EXPECT_FALSE(IsValidSpecialization({1, 1}));     // f[0] > 0
  EXPECT_FALSE(IsValidSpecialization({0, 0, 1}));  // f[2]=1 not a rep
}

TEST(SpecializationTest, FromIdValues) {
  // Paper example (Section 4.2): h maps R(x,y,x,z) to R(1,1,1,2); the
  // h-specialization sends x->x, y->x, z->z. Distinct vars (x,y,z) carry id
  // values (1,1,2).
  Specialization f = SpecializationFromIdValues({1, 1, 2});
  EXPECT_EQ(f, (Specialization{0, 0, 2}));
  EXPECT_TRUE(IsValidSpecialization(f));
}

TEST(SpecializationTest, FromIdValuesIdentity) {
  EXPECT_EQ(SpecializationFromIdValues({1, 2, 3}),
            (Specialization{0, 1, 2}));
  EXPECT_EQ(SpecializationFromIdValues({1, 1, 1}),
            (Specialization{0, 0, 0}));
}

}  // namespace
}  // namespace chase
