// ShardedShapeIndex: the sharded, persistent, write-through materialization
// of shape(D).
//
//  * equivalence: parallel builds over both ShapeSource backends and the
//    `index` FindShapes mode return exactly the serial oracle's shapes;
//  * concurrency: a multi-threaded insert/remove stress run must land in
//    the same state as a serial storage::ShapeIndex replay (run under
//    ThreadSanitizer in CI);
//  * persistence: snapshots round-trip bit-exactly and corrupt or truncated
//    snapshots are rejected;
//  * write-through: the Catalog insert path and the chase engine keep the
//    index current, and IsChaseFinite[L] fed from the index agrees with the
//    scanning implementation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "base/rng.h"
#include "chase/chase_engine.h"
#include "core/is_chase_finite.h"
#include "gen/data_generator.h"
#include "gen/tgd_generator.h"
#include "index/find_shapes.h"
#include "index/sharded_shape_index.h"
#include "io/binary_io.h"
#include "logic/parser.h"
#include "pager/disk_database.h"
#include "pager/disk_shape_source.h"
#include "storage/catalog.h"
#include "storage/shape_finder.h"
#include "storage/shape_index.h"
#include "storage/shape_source.h"

namespace chase {
namespace {

using index::IndexBuildOptions;
using index::ShardedShapeIndex;
using storage::ShapeFinderMode;

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

GeneratedData MakeRandomData(Rng* rng) {
  DataGenParams params;
  params.preds = 1 + static_cast<uint32_t>(rng->Below(6));
  params.min_arity = 1;
  params.max_arity = 1 + static_cast<uint32_t>(rng->Below(5));
  // Small domains force repeated constants, so coarse shapes actually occur
  // (64 is the generator's minimum).
  params.dsize = 64 + rng->Below(150);
  params.rsize = rng->Below(800);
  params.seed = rng->Next();
  auto data = GenerateData(params);
  EXPECT_TRUE(data.ok()) << data.status();
  return std::move(data).value();
}

TEST(ShardedShapeIndexTest, EmptyIndexHasNoShapes) {
  ShardedShapeIndex index(4);
  EXPECT_EQ(index.num_shards(), 4u);
  EXPECT_EQ(index.NumShapes(), 0u);
  EXPECT_EQ(index.NumIndexedTuples(), 0u);
  EXPECT_TRUE(index.CurrentShapes().empty());
}

TEST(ShardedShapeIndexTest, ZeroShardsFallsBackToDefault) {
  ShardedShapeIndex index(0);
  EXPECT_EQ(index.num_shards(), ShardedShapeIndex::kDefaultShards);
}

TEST(ShardedShapeIndexTest, CountsAndRemovalMatchSerialSemantics) {
  Schema schema;
  auto pred = schema.AddPredicate("r", 3);
  ASSERT_TRUE(pred.ok());
  ShardedShapeIndex index(8);
  std::vector<uint32_t> t1 = {1, 1, 2};
  std::vector<uint32_t> t2 = {5, 5, 9};  // same shape (1,1,2)
  index.Insert(*pred, t1);
  index.Insert(*pred, t2);
  EXPECT_EQ(index.NumShapes(), 1u);
  EXPECT_EQ(index.Count(Shape(*pred, {1, 1, 2})), 2u);
  EXPECT_EQ(index.NumIndexedTuples(), 2u);

  ASSERT_TRUE(index.Remove(*pred, t1).ok());
  EXPECT_TRUE(index.Contains(Shape(*pred, {1, 1, 2})));
  ASSERT_TRUE(index.Remove(*pred, t2).ok());
  EXPECT_FALSE(index.Contains(Shape(*pred, {1, 1, 2})));
  EXPECT_EQ(index.Remove(*pred, t1).code(), StatusCode::kFailedPrecondition);
}

// Build over both backends, every (shards, threads) combination, must equal
// the serial single-map oracle — and so must the kIndex FindShapes mode.
TEST(ShardedShapeIndexTest, BuildMatchesSerialOracleOnBothBackends) {
  Rng rng(20260728);
  for (int trial = 0; trial < 6; ++trial) {
    GeneratedData data = MakeRandomData(&rng);
    const std::vector<Shape> expected =
        storage::ShapeIndex::Build(*data.database).CurrentShapes();

    const std::string path =
        TempPath("chase_sharded_index_build_" + std::to_string(trial) +
                 ".db");
    auto disk_db = pager::DiskDatabase::Create(path, *data.database,
                                               /*num_frames=*/16);
    ASSERT_TRUE(disk_db.ok()) << disk_db.status();
    storage::Catalog catalog(data.database.get());
    storage::MemoryShapeSource memory(&catalog);
    pager::DiskShapeSource disk(disk_db->get());

    for (const storage::ShapeSource* source :
         {static_cast<const storage::ShapeSource*>(&memory),
          static_cast<const storage::ShapeSource*>(&disk)}) {
      for (unsigned shards : {1u, 3u, 16u}) {
        for (unsigned threads : {1u, 4u}) {
          auto built = ShardedShapeIndex::Build(*source, {shards, threads});
          ASSERT_TRUE(built.ok()) << built.status();
          EXPECT_EQ(built->num_shards(), shards);
          EXPECT_EQ(built->CurrentShapes(), expected)
              << "trial " << trial << ", backend " << source->Name()
              << ", shards " << shards << ", threads " << threads;
          EXPECT_EQ(built->NumIndexedTuples(), data.database->TotalFacts());
        }
      }
      auto via_finder =
          index::FindShapes(*source, {ShapeFinderMode::kIndex, /*threads=*/4});
      ASSERT_TRUE(via_finder.ok()) << via_finder.status();
      EXPECT_EQ(*via_finder, expected);
    }
    std::remove(path.c_str());
  }
}

// Per-shape multiplicities (not just the distinct set) must match the
// serial oracle after a parallel build.
TEST(ShardedShapeIndexTest, BuildPreservesMultiplicities) {
  Rng rng(7311);
  GeneratedData data = MakeRandomData(&rng);
  storage::ShapeIndex oracle = storage::ShapeIndex::Build(*data.database);
  ShardedShapeIndex sharded =
      ShardedShapeIndex::Build(*data.database, /*shards=*/8);
  for (const Shape& shape : oracle.CurrentShapes()) {
    EXPECT_EQ(sharded.Count(shape), oracle.Count(shape));
  }
  EXPECT_EQ(sharded.NumShapes(), oracle.NumShapes());
}

// The multi-threaded stress test: writers hammer one index concurrently;
// the final state must equal a serial replay. Exercises the per-shard
// latches and the concurrent read paths; run under TSan in CI.
TEST(ShardedShapeIndexTest, ConcurrentInsertRemoveMatchesSerialReplay) {
  constexpr unsigned kThreads = 8;
  constexpr int kOpsPerThread = 4000;

  Schema schema;
  std::vector<PredId> preds;
  for (int i = 0; i < 5; ++i) {
    auto pred = schema.AddPredicate("p" + std::to_string(i),
                                    1 + static_cast<uint32_t>(i % 4));
    ASSERT_TRUE(pred.ok());
    preds.push_back(*pred);
  }

  struct Op {
    bool remove;
    PredId pred;
    std::vector<uint32_t> tuple;
  };

  ShardedShapeIndex sharded(16);
  std::vector<std::vector<Op>> logs(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(1000 + t);
      // Tuples this worker inserted and has not yet removed: removals are
      // restricted to them, so no interleaving can drive a counter negative.
      std::vector<std::pair<PredId, std::vector<uint32_t>>> live;
      for (int op = 0; op < kOpsPerThread; ++op) {
        const bool remove = !live.empty() && rng.Below(100) < 40;
        if (remove) {
          const size_t victim = rng.Below(live.size());
          auto [pred, tuple] = live[victim];
          ASSERT_TRUE(sharded.Remove(pred, tuple).ok());
          logs[t].push_back({true, pred, std::move(tuple)});
          live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
        } else {
          const size_t which = rng.Below(preds.size());
          const PredId pred = preds[which];
          std::vector<uint32_t> tuple(schema.Arity(pred));
          for (uint32_t& v : tuple) {
            v = static_cast<uint32_t>(rng.Below(5));  // small → collisions
          }
          sharded.Insert(pred, tuple);
          logs[t].push_back({false, pred, tuple});
          live.emplace_back(pred, std::move(tuple));
        }
        if (op % 512 == 0) {
          // Concurrent readers: must be data-race-free with the writers.
          (void)sharded.NumShapes();
          (void)sharded.Contains(Shape(preds[0], {1}));
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  // Serial replay, thread by thread: each per-thread log is individually
  // valid, and threads only remove their own inserts, so any thread order
  // replays cleanly and all orders end in the same counter state.
  storage::ShapeIndex oracle;
  for (const auto& log : logs) {
    for (const Op& op : log) {
      if (op.remove) {
        ASSERT_TRUE(oracle.Remove(op.pred, op.tuple).ok());
      } else {
        oracle.Insert(op.pred, op.tuple);
      }
    }
  }

  EXPECT_EQ(sharded.CurrentShapes(), oracle.CurrentShapes());
  for (const Shape& shape : oracle.CurrentShapes()) {
    EXPECT_EQ(sharded.Count(shape), oracle.Count(shape));
  }
}

TEST(ShardedShapeIndexTest, SnapshotRoundTrips) {
  Rng rng(555);
  GeneratedData data = MakeRandomData(&rng);
  ShardedShapeIndex built =
      ShardedShapeIndex::Build(*data.database, /*shards=*/12);

  const std::string path = TempPath("chase_sharded_index_snapshot.chidx");
  ASSERT_TRUE(built.Save(path).ok());
  auto loaded = ShardedShapeIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ(loaded->num_shards(), 12u);
  EXPECT_EQ(loaded->CurrentShapes(), built.CurrentShapes());
  EXPECT_EQ(loaded->NumIndexedTuples(), built.NumIndexedTuples());
  for (const Shape& shape : built.CurrentShapes()) {
    EXPECT_EQ(loaded->Count(shape), built.Count(shape));
  }

  // Snapshot bytes are canonical: saving the loaded index reproduces them.
  auto first = io::LoadShapeSnapshot(path);
  ASSERT_TRUE(first.ok());
  const std::string path2 = TempPath("chase_sharded_index_snapshot2.chidx");
  ASSERT_TRUE(loaded->Save(path2).ok());
  auto second = io::LoadShapeSnapshot(path2);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(io::SerializeShapeSnapshot(*first),
            io::SerializeShapeSnapshot(*second));
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(ShardedShapeIndexTest, CorruptAndTruncatedSnapshotsAreRejected) {
  Schema schema;
  auto pred = schema.AddPredicate("r", 2);
  ASSERT_TRUE(pred.ok());
  ShardedShapeIndex index(2);
  std::vector<uint32_t> tuple = {3, 3};
  index.Insert(*pred, tuple);

  io::ShapeSnapshot snapshot;
  snapshot.num_shards = index.num_shards();
  for (const Shape& shape : index.CurrentShapes()) {
    snapshot.counts.push_back({shape, index.Count(shape)});
  }
  std::vector<uint8_t> bytes = io::SerializeShapeSnapshot(snapshot);

  // Bit flip in the payload: checksum mismatch.
  std::vector<uint8_t> corrupt = bytes;
  corrupt.back() ^= 0xff;
  EXPECT_EQ(io::DeserializeShapeSnapshot(corrupt).status().code(),
            StatusCode::kFailedPrecondition);

  // Truncation: reported as such, never read past the end.
  std::vector<uint8_t> truncated(bytes.begin(), bytes.end() - 3);
  EXPECT_EQ(io::DeserializeShapeSnapshot(truncated).status().code(),
            StatusCode::kOutOfRange);

  // Wrong magic (a program is not a snapshot).
  EXPECT_FALSE(io::DeserializeShapeSnapshot(
                   io::SerializeProgram(schema, Database(&schema), {}))
                   .ok());

  // An id-tuple that is not a restricted-growth string.
  io::ShapeSnapshot bad = snapshot;
  bad.counts[0].shape.id = {2, 1};
  EXPECT_EQ(io::DeserializeShapeSnapshot(io::SerializeShapeSnapshot(bad))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

// The `index` FindShapes mode agrees byte-for-byte with the scan and exists
// plans on memory and disk across generated scenarios (the cross-backend
// property the scan/exists plans already maintain, extended to the index).
TEST(ShardedShapeIndexTest, IndexModeAgreesWithScanAndExistsEverywhere) {
  Rng rng(31415);
  for (int trial = 0; trial < 6; ++trial) {
    GeneratedData data = MakeRandomData(&rng);
    storage::Catalog catalog(data.database.get());
    storage::MemoryShapeSource memory(&catalog);
    const std::string path =
        TempPath("chase_sharded_index_agree_" + std::to_string(trial) +
                 ".db");
    auto disk_db = pager::DiskDatabase::Create(path, *data.database,
                                               /*num_frames=*/8);
    ASSERT_TRUE(disk_db.ok()) << disk_db.status();
    pager::DiskShapeSource disk(disk_db->get());

    auto expected = index::FindShapes(memory, {ShapeFinderMode::kScan, 1});
    ASSERT_TRUE(expected.ok());
    for (const storage::ShapeSource* source :
         {static_cast<const storage::ShapeSource*>(&memory),
          static_cast<const storage::ShapeSource*>(&disk)}) {
      for (ShapeFinderMode mode :
           {ShapeFinderMode::kScan, ShapeFinderMode::kExists,
            ShapeFinderMode::kIndex}) {
        for (unsigned threads : {1u, 4u}) {
          auto shapes = index::FindShapes(*source, {mode, threads});
          ASSERT_TRUE(shapes.ok()) << shapes.status();
          EXPECT_EQ(*shapes, *expected)
              << "trial " << trial << ", backend " << source->Name()
              << ", mode " << storage::ShapeFinderModeName(mode)
              << ", threads " << threads;
        }
      }
    }
    std::remove(path.c_str());
  }
}

// Write-through via the Catalog insert path: the index stays equal to a
// recomputation as facts stream in.
TEST(ShardedShapeIndexTest, CatalogInsertFactWritesThrough) {
  Rng rng(99);
  Schema schema;
  std::vector<PredId> preds;
  for (int i = 0; i < 3; ++i) {
    auto pred = schema.AddPredicate("p" + std::to_string(i),
                                    1 + static_cast<uint32_t>(rng.Below(4)));
    ASSERT_TRUE(pred.ok());
    preds.push_back(*pred);
  }
  Database db(&schema);
  db.EnsureAnonymousDomain(16);

  ShardedShapeIndex index(4);
  storage::Catalog catalog(&db);
  catalog.AttachShapeIndex(&index);
  ASSERT_EQ(catalog.shape_index(), &index);

  for (int i = 0; i < 400; ++i) {
    const size_t which = rng.Below(preds.size());
    std::vector<uint32_t> tuple(schema.Arity(preds[which]));
    for (uint32_t& v : tuple) v = static_cast<uint32_t>(rng.Below(6));
    ASSERT_TRUE(catalog.InsertFact(preds[which], tuple).ok());
  }
  EXPECT_EQ(db.TotalFacts(), 400u);
  EXPECT_EQ(index.NumIndexedTuples(), 400u);
  EXPECT_EQ(index.CurrentShapes(),
            storage::ShapeIndex::Build(db).CurrentShapes());

  // A read-only catalog refuses the write path.
  storage::Catalog read_only(static_cast<const Database*>(&db));
  std::vector<uint32_t> tuple(schema.Arity(preds[0]), 1);
  EXPECT_EQ(read_only.InsertFact(preds[0], tuple).code(),
            StatusCode::kFailedPrecondition);
}

// Write-through via the chase engine: after a run, the index holds exactly
// the shapes of the chased instance, nulls included.
TEST(ShardedShapeIndexTest, ChaseWriteThroughTracksInstanceShapes) {
  auto program = ParseProgram(R"(
    e(a, b). e(b, c). r(a, a).
    e(X, Y) -> e(Y, Z).
    e(X, Y) -> r(Y, Y).
  )");
  ASSERT_TRUE(program.ok()) << program.status();

  ShardedShapeIndex index =
      ShardedShapeIndex::Build(*program->database, /*shards=*/4);
  ChaseOptions options;
  options.max_atoms = 200;
  options.shape_index = &index;
  auto result = RunChase(*program->database, program->tgds, options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_GT(result->triggers_fired, 0u);

  ShapeSet expected_set;
  result->instance.ForEachAtom([&](const GroundAtom& atom) {
    expected_set.insert(Shape(atom.pred, IdOf<Term>(atom.args)));
  });
  std::vector<Shape> expected(expected_set.begin(), expected_set.end());
  std::sort(expected.begin(), expected.end());

  EXPECT_EQ(index.CurrentShapes(), expected);
}

// IsChaseFinite[L] fed from a live sharded index: same verdict as the
// scanning implementation, zero db-dependent work.
class IndexFedLCheckTest : public testing::TestWithParam<uint64_t> {};

TEST_P(IndexFedLCheckTest, AgreesWithScanAndSkipsShapeFinding) {
  Rng rng(GetParam());
  GeneratedData data = MakeRandomData(&rng);
  TgdGenParams params;
  params.ssize = static_cast<uint32_t>(data.schema->NumPredicates());
  params.min_arity = 1;
  params.max_arity = 5;
  params.tsize = 25;
  params.tclass = TgdClass::kLinear;
  params.seed = rng.Next();
  auto tgds = GenerateTgds(*data.schema, params);
  ASSERT_TRUE(tgds.ok()) << tgds.status();

  auto scanned = IsChaseFiniteL(*data.database, tgds.value());
  ASSERT_TRUE(scanned.ok()) << scanned.status();

  ShardedShapeIndex index = ShardedShapeIndex::Build(*data.database);
  LCheckOptions options;
  options.shape_index = &index;
  LCheckStats stats;
  auto indexed =
      IsChaseFiniteL(*data.database, tgds.value(), options, &stats);
  ASSERT_TRUE(indexed.ok()) << indexed.status();
  EXPECT_EQ(indexed.value(), scanned.value());
  EXPECT_EQ(stats.access.tuples_scanned, 0u);
  EXPECT_EQ(stats.access.exists_queries, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexFedLCheckTest,
                         testing::Values(2, 4, 6, 10, 12, 14));

// ---------------------------------------------------------------------------
// Content fingerprint: the order-independent digest behind the snapshot
// staleness guard.

TEST(ShapeFingerprintTest, EveryBuildPathAgreesWithDatabaseFingerprint) {
  Rng rng(808);
  for (int trial = 0; trial < 4; ++trial) {
    GeneratedData data = MakeRandomData(&rng);
    const uint64_t expected = index::DatabaseFingerprint(*data.database);

    // Serial convenience build.
    EXPECT_EQ(ShardedShapeIndex::Build(*data.database).ContentFingerprint(),
              expected);

    // Parallel source build over memory and disk.
    storage::Catalog catalog(data.database.get());
    storage::MemoryShapeSource memory(&catalog);
    auto built = ShardedShapeIndex::Build(memory, {8, 4});
    ASSERT_TRUE(built.ok()) << built.status();
    EXPECT_EQ(built->ContentFingerprint(), expected);

    const std::string path =
        TempPath("chase_fingerprint_" + std::to_string(trial) + ".db");
    auto disk_db = pager::DiskDatabase::Create(path, *data.database,
                                               /*num_frames=*/16);
    ASSERT_TRUE(disk_db.ok()) << disk_db.status();
    pager::DiskShapeSource disk(disk_db->get());
    auto disk_built = ShardedShapeIndex::Build(disk, {4, 4});
    ASSERT_TRUE(disk_built.ok()) << disk_built.status();
    EXPECT_EQ(disk_built->ContentFingerprint(), expected);
    std::remove(path.c_str());
  }
}

TEST(ShapeFingerprintTest, WriteThroughMaintainsFingerprint) {
  Rng rng(909);
  Schema schema;
  auto pred = schema.AddPredicate("p", 3);
  ASSERT_TRUE(pred.ok());
  Database db(&schema);
  db.EnsureAnonymousDomain(8);

  ShardedShapeIndex index(4);
  storage::Catalog catalog(&db);
  catalog.AttachShapeIndex(&index);
  for (int i = 0; i < 200; ++i) {
    std::vector<uint32_t> tuple(3);
    for (uint32_t& v : tuple) v = static_cast<uint32_t>(rng.Below(5));
    ASSERT_TRUE(catalog.InsertFact(*pred, tuple).ok());
  }
  EXPECT_EQ(index.ContentFingerprint(), index::DatabaseFingerprint(db));

  // Insert/remove round-trips restore the digest exactly.
  const uint64_t before = index.ContentFingerprint();
  std::vector<uint32_t> extra = {1, 2, 1};
  index.Insert(*pred, extra);
  EXPECT_NE(index.ContentFingerprint(), before);
  ASSERT_TRUE(index.Remove(*pred, extra).ok());
  EXPECT_EQ(index.ContentFingerprint(), before);
}

TEST(ShapeFingerprintTest, CatchesRemoveInsertPairThatPreservesCounts) {
  // The staleness-guard scenario: two databases with the same tuple count
  // (and here even the same shapes) but different contents must disagree.
  Schema schema;
  auto pred = schema.AddPredicate("r", 2);
  ASSERT_TRUE(pred.ok());
  Database a(&schema);
  a.EnsureAnonymousDomain(16);
  Database b(&schema);
  b.EnsureAnonymousDomain(16);
  std::vector<uint32_t> t1 = {1, 2};
  std::vector<uint32_t> t2 = {3, 4};  // same shape (1,2) as t1
  std::vector<uint32_t> shared = {5, 5};
  ASSERT_TRUE(a.AddFact(*pred, t1).ok());
  ASSERT_TRUE(a.AddFact(*pred, shared).ok());
  ASSERT_TRUE(b.AddFact(*pred, t2).ok());
  ASSERT_TRUE(b.AddFact(*pred, shared).ok());

  const ShardedShapeIndex ia = ShardedShapeIndex::Build(a);
  const ShardedShapeIndex ib = ShardedShapeIndex::Build(b);
  EXPECT_EQ(ia.NumIndexedTuples(), ib.NumIndexedTuples());
  EXPECT_EQ(ia.CurrentShapes(), ib.CurrentShapes());
  EXPECT_NE(ia.ContentFingerprint(), ib.ContentFingerprint());
  EXPECT_NE(index::DatabaseFingerprint(a), index::DatabaseFingerprint(b));
}

TEST(ShapeFingerprintTest, SnapshotPersistsFingerprint) {
  Rng rng(1010);
  GeneratedData data = MakeRandomData(&rng);
  ShardedShapeIndex built = ShardedShapeIndex::Build(*data.database, 6);
  const std::string path = TempPath("chase_fingerprint_snapshot.chidx");
  ASSERT_TRUE(built.Save(path).ok());
  auto loaded = ShardedShapeIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->ContentFingerprint(), built.ContentFingerprint());
  EXPECT_EQ(loaded->ContentFingerprint(),
            index::DatabaseFingerprint(*data.database));
  std::remove(path.c_str());
}

TEST(ShapeFingerprintTest, ConstantTermsAndRowStoreTuplesAgree) {
  // The Term overload must digest a constants-only tuple identically to the
  // row-store overload, so chase write-through over ground atoms matches.
  std::vector<uint32_t> row = {7, 7, 9};
  std::vector<Term> terms = {MakeConstant(7), MakeConstant(7),
                             MakeConstant(9)};
  EXPECT_EQ(index::TupleFingerprint(2, std::span<const uint32_t>(row)),
            index::TupleFingerprint(2, std::span<const Term>(terms)));
  // A null in the same equality pattern digests differently: the
  // fingerprint is content-based, not shape-based.
  std::vector<Term> with_null = {MakeNull(7), MakeNull(7), MakeConstant(9)};
  EXPECT_NE(index::TupleFingerprint(2, std::span<const Term>(terms)),
            index::TupleFingerprint(2, std::span<const Term>(with_null)));
}

}  // namespace
}  // namespace chase
