#include <gtest/gtest.h>

#include "core/simplification.h"
#include "logic/parser.h"
#include "logic/printer.h"

namespace chase {
namespace {

Program MustParse(const std::string& text) {
  auto program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(program).value();
}

TEST(ShapeSchemaTest, InternIsIdempotentAndNamed) {
  Schema base;
  const PredId r = base.AddPredicate("r", 3).value();
  ShapeSchema shapes(&base);
  const PredId p1 = shapes.Intern(Shape(r, {1, 1, 2}));
  const PredId p2 = shapes.Intern(Shape(r, {1, 1, 2}));
  const PredId p3 = shapes.Intern(Shape(r, {1, 2, 3}));
  EXPECT_EQ(p1, p2);
  EXPECT_NE(p1, p3);
  EXPECT_EQ(shapes.schema().PredicateName(p1), "r_[1,1,2]");
  EXPECT_EQ(shapes.schema().Arity(p1), 2u);  // two distinct blocks
  EXPECT_EQ(shapes.schema().Arity(p3), 3u);
  EXPECT_EQ(shapes.ShapeOf(p1), Shape(r, {1, 1, 2}));
  EXPECT_EQ(shapes.NumShapes(), 2u);
}

TEST(SimplifyTgdTest, IdentitySpecializationOnSimpleRule) {
  Program p = MustParse("r(X,Y) -> s(Y,Z).");
  ShapeSchema shapes(p.schema.get());
  auto simplified = SimplifyTgd(p.tgds[0], {0, 1}, shapes, nullptr);
  ASSERT_TRUE(simplified.ok()) << simplified.status();
  EXPECT_TRUE(simplified->IsSimpleLinear());
  EXPECT_EQ(ToString(shapes.schema(), *simplified),
            "r_[1,2](X0,X1) -> s_[1,2](X1,Z0).");
}

TEST(SimplifyTgdTest, MergingSpecialization) {
  // r(x,y) -> s(y,x) under f = {y -> x}: body becomes r_[1,1](x), head
  // s_[1,1](x).
  Program p = MustParse("r(X,Y) -> s(Y,X).");
  ShapeSchema shapes(p.schema.get());
  auto simplified = SimplifyTgd(p.tgds[0], {0, 0}, shapes, nullptr);
  ASSERT_TRUE(simplified.ok());
  EXPECT_EQ(ToString(shapes.schema(), *simplified),
            "r_[1,1](X0) -> s_[1,1](X0).");
}

TEST(SimplifyTgdTest, NonSimpleBodyNormalizes) {
  // r(x,y,x) -> s(x,z) under the identity: body shape [1,2,1].
  Program p = MustParse("r(X,Y,X) -> s(X,Z).");
  ShapeSchema shapes(p.schema.get());
  auto simplified = SimplifyTgd(p.tgds[0], {0, 1}, shapes, nullptr);
  ASSERT_TRUE(simplified.ok());
  EXPECT_TRUE(simplified->IsSimpleLinear());
  EXPECT_EQ(ToString(shapes.schema(), *simplified),
            "r_[1,2,1](X0,X1) -> s_[1,2](X0,Z0).");
}

TEST(SimplifyTgdTest, HeadShapesReported) {
  Program p = MustParse("r(X,Y) -> s(Y,Y,Z).");
  ShapeSchema shapes(p.schema.get());
  std::vector<Shape> head_shapes;
  auto simplified = SimplifyTgd(p.tgds[0], {0, 1}, shapes, &head_shapes);
  ASSERT_TRUE(simplified.ok());
  const PredId s = p.schema->FindPredicate("s").value();
  ASSERT_EQ(head_shapes.size(), 1u);
  EXPECT_EQ(head_shapes[0], Shape(s, {1, 1, 2}));
}

TEST(SimplifyTgdTest, RejectsInvalidInputs) {
  Program p = MustParse("r(X,Y), s(Y,Z) -> t(X,Z).\nr(X,Y) -> s(Y,Z).");
  ShapeSchema shapes(p.schema.get());
  EXPECT_FALSE(SimplifyTgd(p.tgds[0], {0, 1, 2}, shapes, nullptr).ok());
  EXPECT_FALSE(SimplifyTgd(p.tgds[1], {0}, shapes, nullptr).ok());
  EXPECT_FALSE(SimplifyTgd(p.tgds[1], {1, 1}, shapes, nullptr).ok());
}

TEST(StaticSimplificationTest, BellNumberManyOutputs) {
  // One rule with 3 distinct body variables: Bell(3) = 5 simplifications.
  Program p = MustParse("r(X,Y,W) -> s(X,W,Z).");
  auto result = StaticSimplification(*p.schema, p.tgds);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tgds.size(), 5u);
  EXPECT_EQ(StaticSimplificationSize(p.tgds), 5u);
  for (const Tgd& tgd : result->tgds) {
    EXPECT_TRUE(tgd.IsSimpleLinear());
  }
}

TEST(StaticSimplificationTest, RespectsOutputCap) {
  Program p = MustParse("r(A,B,C,D,E) -> s(A,Z).");
  auto result = StaticSimplification(*p.schema, p.tgds, /*max_output=*/10);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(StaticSimplificationTest, RejectsNonLinear) {
  Program p = MustParse("r(X), s(X) -> t(X).");
  EXPECT_FALSE(StaticSimplification(*p.schema, p.tgds).ok());
}

TEST(StaticSimplificationTest, SizeSaturates) {
  Program p = MustParse(
      "r(A,B,C,D,E,F,G,H,I,J,K,L,M,N,O,P,Q,R1,S1,T1,U,V,W,X,Y,Z1,A2,B2,C2,"
      "D2,E2,F2,G2,H2,I2,J2,K2,L2,M2,N2,O2,P2,Q2,R2,S2,T2,U2,V2,W2,X2) -> "
      "s(A).");
  EXPECT_EQ(StaticSimplificationSize(p.tgds), UINT64_MAX);
}

TEST(SimplifyDatabaseTest, PaperDbExample) {
  Program p = MustParse("r(a,a). r(a,b). q(c,c,d).");
  ShapeSchema shapes(p.schema.get());
  auto simple_db = SimplifyDatabase(*p.database, shapes);
  // Three facts: r_[1,1](a), r_[1,2](a,b), q_[1,1,2](c,d).
  EXPECT_EQ(simple_db->TotalFacts(), 3u);
  const Schema& ss = shapes.schema();
  ASSERT_TRUE(ss.FindPredicate("r_[1,1]").has_value());
  ASSERT_TRUE(ss.FindPredicate("r_[1,2]").has_value());
  ASSERT_TRUE(ss.FindPredicate("q_[1,1,2]").has_value());
  EXPECT_EQ(ss.Arity(ss.FindPredicate("q_[1,1,2]").value()), 2u);
  EXPECT_EQ(simple_db->NumTuples(ss.FindPredicate("r_[1,1]").value()), 1u);
}

TEST(SimplifyDatabaseTest, PreservesConstantsAcrossShapes) {
  Program p = MustParse("r(a,b). r(b,a).");
  ShapeSchema shapes(p.schema.get());
  auto simple_db = SimplifyDatabase(*p.database, shapes);
  const Schema& ss = shapes.schema();
  const PredId r12 = ss.FindPredicate("r_[1,2]").value();
  ASSERT_EQ(simple_db->NumTuples(r12), 2u);
  auto t0 = simple_db->Tuple(r12, 0);
  auto t1 = simple_db->Tuple(r12, 1);
  EXPECT_EQ(simple_db->ConstantName(t0[0]), "a");
  EXPECT_EQ(simple_db->ConstantName(t0[1]), "b");
  EXPECT_EQ(simple_db->ConstantName(t1[0]), "b");
  EXPECT_EQ(simple_db->ConstantName(t1[1]), "a");
}

}  // namespace
}  // namespace chase
