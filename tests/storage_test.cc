#include <gtest/gtest.h>

#include "base/rng.h"
#include "gen/data_generator.h"
#include "logic/parser.h"
#include "storage/catalog.h"
#include "storage/exists_query.h"
#include "storage/parallel_shape_finder.h"
#include "storage/shape_finder.h"

namespace chase {
namespace {

using storage::Catalog;
using storage::FindShapes;
using storage::FindShapesInDatabase;
using storage::FindShapesInMemory;
using storage::ShapeFinderMode;

Program MustParse(const std::string& text) {
  auto program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(program).value();
}

TEST(CatalogTest, ListNonEmptyRelationsUsesMetadataOnly) {
  Program p = MustParse("r(a,b). s(c). ");
  ASSERT_TRUE(p.schema->GetOrAddPredicate("t", 2).ok());
  Catalog catalog(p.database.get());
  auto relations = catalog.ListNonEmptyRelations();
  EXPECT_EQ(relations.size(), 2u);
  EXPECT_EQ(catalog.stats().catalog_queries, 1u);
  EXPECT_EQ(catalog.stats().tuples_scanned, 0u);
}

TEST(ExistsQueryTest, ExactShapeMatch) {
  Program p = MustParse("r(a,a,b). r(a,b,c).");
  Catalog catalog(p.database.get());
  const PredId r = p.schema->FindPredicate("r").value();
  EXPECT_TRUE(ExistsTupleWithShape(catalog, r, {1, 1, 2}));
  EXPECT_TRUE(ExistsTupleWithShape(catalog, r, {1, 2, 3}));
  EXPECT_FALSE(ExistsTupleWithShape(catalog, r, {1, 1, 1}));
  EXPECT_FALSE(ExistsTupleWithShape(catalog, r, {1, 2, 1}));
  EXPECT_FALSE(ExistsTupleWithShape(catalog, r, {1, 2, 2}));
}

TEST(ExistsQueryTest, RelaxedQueryIgnoresDisequalities) {
  Program p = MustParse("r(a,a,a).");
  Catalog catalog(p.database.get());
  const PredId r = p.schema->FindPredicate("r").value();
  // The all-equal tuple satisfies the equality conditions of every shape
  // that only asks for equalities it has.
  EXPECT_TRUE(ExistsTupleSatisfyingEqualities(catalog, r, {1, 1, 2}));
  EXPECT_TRUE(ExistsTupleSatisfyingEqualities(catalog, r, {1, 1, 1}));
  EXPECT_TRUE(ExistsTupleSatisfyingEqualities(catalog, r, {1, 2, 3}));
  EXPECT_FALSE(ExistsTupleWithShape(catalog, r, {1, 1, 2}));
}

TEST(ExistsQueryTest, EarlyExitCountsScannedTuples) {
  Program p = MustParse("r(a,b). r(c,d). r(e,f).");
  Catalog catalog(p.database.get());
  const PredId r = p.schema->FindPredicate("r").value();
  EXPECT_TRUE(ExistsTupleWithShape(catalog, r, {1, 2}));
  EXPECT_EQ(catalog.stats().tuples_scanned, 1u);  // first row matches
  EXPECT_FALSE(ExistsTupleWithShape(catalog, r, {1, 1}));
  EXPECT_EQ(catalog.stats().tuples_scanned, 4u);  // full scan added 3
  EXPECT_EQ(catalog.stats().exists_queries, 2u);
}

TEST(ShapeFinderTest, FindsAllShapes) {
  Program p = MustParse(R"(
    r(a,a,b). r(a,b,c). r(x,y,x).
    s(q). s(w).
    t(m,m).
  )");
  Catalog catalog(p.database.get());
  const PredId r = p.schema->FindPredicate("r").value();
  const PredId s = p.schema->FindPredicate("s").value();
  const PredId t = p.schema->FindPredicate("t").value();
  const std::vector<Shape> expected = {
      Shape(r, {1, 1, 2}), Shape(r, {1, 2, 1}), Shape(r, {1, 2, 3}),
      Shape(s, {1}), Shape(t, {1, 1})};
  EXPECT_EQ(FindShapesInMemory(catalog), expected);
  EXPECT_EQ(FindShapesInDatabase(catalog), expected);
}

TEST(ShapeFinderTest, EmptyDatabase) {
  Program p;
  ASSERT_TRUE(p.schema->AddPredicate("r", 2).ok());
  Catalog catalog(p.database.get());
  EXPECT_TRUE(FindShapesInMemory(catalog).empty());
  EXPECT_TRUE(FindShapesInDatabase(catalog).empty());
}

TEST(ShapeFinderTest, AprioriPrunesUnreachableShapes) {
  // All tuples are all-distinct: the relaxed query for any shape with an
  // equality fails on the first probe, so the in-db finder must not issue
  // the full query for coarser shapes of arity-4 (15 partitions; only the
  // all-distinct one and its 6 single-merge children get a relaxed probe).
  Program p = MustParse("r(a,b,c,d). r(e,f,g,h).");
  Catalog catalog(p.database.get());
  auto shapes = FindShapesInDatabase(catalog);
  ASSERT_EQ(shapes.size(), 1u);
  // 1 relaxed + 1 full for the all-distinct shape, then 6 failing relaxed
  // probes for its children: 8 queries total, far below 2 * 15.
  EXPECT_EQ(catalog.stats().exists_queries, 8u);
}

TEST(ShapeFinderTest, ModeDispatchAndNames) {
  Program p = MustParse("r(a,b).");
  Catalog catalog(p.database.get());
  EXPECT_EQ(FindShapes(catalog, ShapeFinderMode::kInMemory).size(), 1u);
  EXPECT_EQ(FindShapes(catalog, ShapeFinderMode::kInDatabase).size(), 1u);
  // The plans are backend-independent since the ShapeSource layer; the
  // legacy enumerators alias the plan their backend used.
  EXPECT_STREQ(storage::ShapeFinderModeName(ShapeFinderMode::kScan), "scan");
  EXPECT_STREQ(storage::ShapeFinderModeName(ShapeFinderMode::kExists),
               "exists");
  EXPECT_EQ(ShapeFinderMode::kInMemory, ShapeFinderMode::kScan);
  EXPECT_EQ(ShapeFinderMode::kInDatabase, ShapeFinderMode::kExists);
}

TEST(ShapeFinderTest, AgreeOnRandomDatabases) {
  Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    DataGenParams params;
    params.preds = 1 + static_cast<uint32_t>(rng.Below(5));
    params.min_arity = 1;
    params.max_arity = 1 + static_cast<uint32_t>(rng.Below(5));
    params.dsize = 64 + rng.Below(64);
    params.rsize = rng.Below(60);
    params.seed = rng.Next();
    auto data = GenerateData(params);
    ASSERT_TRUE(data.ok()) << data.status();
    Catalog catalog(data->database.get());
    EXPECT_EQ(FindShapesInMemory(catalog), FindShapesInDatabase(catalog))
        << "trial " << trial;
  }
}

TEST(ShapeFinderTest, StatsDifferBetweenModes) {
  DataGenParams params;
  params.preds = 3;
  params.min_arity = 2;
  params.max_arity = 3;
  params.dsize = 100;
  params.rsize = 50;
  auto data = GenerateData(params);
  ASSERT_TRUE(data.ok());
  Catalog mem_catalog(data->database.get());
  FindShapesInMemory(mem_catalog);
  EXPECT_EQ(mem_catalog.stats().exists_queries, 0u);
  EXPECT_EQ(mem_catalog.stats().relations_loaded, 3u);
  EXPECT_EQ(mem_catalog.stats().tuples_scanned, 150u);

  Catalog db_catalog(data->database.get());
  FindShapesInDatabase(db_catalog);
  EXPECT_GT(db_catalog.stats().exists_queries, 0u);
  EXPECT_EQ(db_catalog.stats().relations_loaded, 0u);
}

class ParallelShapeFinderTest
    : public testing::TestWithParam<std::tuple<unsigned, uint64_t>> {};

TEST_P(ParallelShapeFinderTest, AgreesWithSerialScan) {
  const auto [threads, seed] = GetParam();
  DataGenParams params;
  params.preds = 7;
  params.min_arity = 1;
  params.max_arity = 5;
  params.dsize = 200;
  params.rsize = 500;
  params.seed = seed;
  auto data = GenerateData(params);
  ASSERT_TRUE(data.ok());

  Catalog serial_catalog(data->database.get());
  std::vector<Shape> expected = FindShapesInMemory(serial_catalog);

  Catalog parallel_catalog(data->database.get());
  std::vector<Shape> actual =
      storage::FindShapesParallel(parallel_catalog, threads);
  EXPECT_EQ(actual, expected);
  // Every tuple is scanned exactly once regardless of thread count.
  EXPECT_EQ(parallel_catalog.stats().tuples_scanned,
            serial_catalog.stats().tuples_scanned);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndSeeds, ParallelShapeFinderTest,
    testing::Combine(testing::Values(1u, 2u, 4u, 8u),
                     testing::Values(17u, 29u)));

TEST(ParallelShapeFinderTest, EmptyDatabase) {
  Schema schema;
  ASSERT_TRUE(schema.AddPredicate("r", 2).ok());
  Database db(&schema);
  Catalog catalog(&db);
  EXPECT_TRUE(storage::FindShapesParallel(catalog, 4).empty());
}

}  // namespace
}  // namespace chase
