#include <gtest/gtest.h>

#include "core/weak_acyclicity.h"
#include "graph/tarjan.h"
#include "logic/parser.h"

namespace chase {
namespace {

Program MustParse(const std::string& text) {
  auto program = ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(program).value();
}

TEST(WeakAcyclicityTest, AcyclicCopyRules) {
  Program p = MustParse("r(X,Y) -> s(X,Y).\ns(X,Y) -> t(Y,X).");
  EXPECT_TRUE(IsWeaklyAcyclic(*p.schema, p.tgds));
}

TEST(WeakAcyclicityTest, SpecialSelfLoopIsNotWeaklyAcyclic) {
  Program p = MustParse("e(X,Y) -> e(Y,Z).");
  EXPECT_FALSE(IsWeaklyAcyclic(*p.schema, p.tgds));
}

TEST(WeakAcyclicityTest, NormalCycleAloneIsFine) {
  // A normal cycle without special edges does not break weak acyclicity.
  Program p = MustParse("r(X,Y) -> s(Y,X).\ns(X,Y) -> r(Y,X).");
  EXPECT_TRUE(IsWeaklyAcyclic(*p.schema, p.tgds));
}

TEST(WeakAcyclicityTest, SpecialEdgeIntoCycleIsFine) {
  // Special edge enters a normal cycle but no cycle passes through it.
  Program p = MustParse("a(X) -> r(X,Z).\nr(X,Y) -> s(Y,X).\ns(X,Y) -> r(X,Y).");
  EXPECT_TRUE(IsWeaklyAcyclic(*p.schema, p.tgds));
}

TEST(WeakAcyclicityTest, CycleThroughSpecialEdge) {
  // r feeds s with a fresh null, s feeds back into r at the same position.
  Program p = MustParse("r(X) -> s(X,Z).\ns(X,Y) -> r(Y).");
  EXPECT_FALSE(IsWeaklyAcyclic(*p.schema, p.tgds));
}

TEST(WeakAcyclicityTest, FaginDataExchangeExample) {
  // Classic weakly-acyclic data-exchange mapping: source-to-target with
  // existentials but no target recursion into the special positions.
  Program p = MustParse(R"(
    emp(X) -> rep(X, Z).
    rep(X, Y) -> emp(X).
  )");
  // (emp,1)->(rep,1) normal, (emp,1)->(rep,2) special, (rep,1)->(emp,1)
  // normal: the cycle (emp,1)<->(rep,1) has no special edge.
  EXPECT_TRUE(IsWeaklyAcyclic(*p.schema, p.tgds));
}

TEST(WeakAcyclicityTest, FaginNonWeaklyAcyclicVariant) {
  // Same mapping but the report's fresh value flows back: not weakly
  // acyclic.
  Program p = MustParse(R"(
    emp(X) -> rep(X, Z).
    rep(X, Y) -> emp(Y).
  )");
  EXPECT_FALSE(IsWeaklyAcyclic(*p.schema, p.tgds));
}

TEST(NonUniformWeakAcyclicityTest, UnsupportedCycleIsAccepted) {
  // The bad cycle lives in predicate e, but the database only populates an
  // unrelated predicate q from which e is unreachable.
  Program p = MustParse("q(a).\ne(X,Y) -> e(Y,Z).\n");
  EXPECT_TRUE(IsWeaklyAcyclicWrt(*p.database, p.tgds));
  EXPECT_FALSE(IsWeaklyAcyclic(*p.schema, p.tgds));
}

TEST(NonUniformWeakAcyclicityTest, DirectlySupportedCycle) {
  Program p = MustParse("e(a,b).\ne(X,Y) -> e(Y,Z).\n");
  EXPECT_FALSE(IsWeaklyAcyclicWrt(*p.database, p.tgds));
}

TEST(NonUniformWeakAcyclicityTest, TransitivelySupportedCycle) {
  // q reaches e through a chain, so the cycle is D-supported.
  Program p = MustParse(R"(
    q(a).
    q(X) -> w(X).
    w(X) -> e(X,X).
    e(X,Y) -> e(Y,Z).
  )");
  EXPECT_FALSE(IsWeaklyAcyclicWrt(*p.database, p.tgds));
}

TEST(NonUniformWeakAcyclicityTest, EmptyDatabaseSupportsNothing) {
  Program p = MustParse("e(X,Y) -> e(Y,Z).");
  EXPECT_TRUE(IsWeaklyAcyclicWrt(*p.database, p.tgds));
}

TEST(SupportsTest, SeedReachabilityViaReverseEdges) {
  Program p = MustParse(R"(
    q(a).
    q(X) -> e(X,X).
    e(X,Y) -> e(Y,Z).
  )");
  DependencyGraph graph = BuildDependencyGraph(*p.schema, p.tgds);
  SpecialSccs special = FindSpecialSccs(graph.graph());
  ASSERT_FALSE(special.empty());
  storage::Catalog catalog(p.database.get());
  EXPECT_TRUE(Supports(catalog, graph, special.representatives));
  EXPECT_FALSE(Supports(catalog, graph, {}));
}

TEST(SupportsTest, SeedOnExtensionalPredicateItself) {
  // The R == P base case: the seed position's own predicate is extensional.
  Program p = MustParse("e(a,b).\ne(X,Y) -> e(Y,Z).");
  DependencyGraph graph = BuildDependencyGraph(*p.schema, p.tgds);
  SpecialSccs special = FindSpecialSccs(graph.graph());
  ASSERT_FALSE(special.empty());
  storage::Catalog catalog(p.database.get());
  EXPECT_TRUE(Supports(catalog, graph, special.representatives));
}

}  // namespace
}  // namespace chase
