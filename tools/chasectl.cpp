// chasectl — the command-line front end to the chase-termination library.
//
// Subcommands:
//   check <file> [--mode=sl|l] [--shapes=mem|db|index] [--threads=N]
//                                                  termination check
//   chase <file> [--variant=so|ob|re] [--max-atoms=N] [--max-rounds=N]
//               [--threads=N] [--hom-budget=N] [--checkpoint=FILE]
//               [--checkpoint-every=N] [--resume=FILE]
//               [--progress[=SECS]] [--metrics-interval=SECS] [--print]
//   simplify <file> [--mode=scan|exists|index] [--threads=N] [--print]
//                                                  simple_D(Σ) via the
//                                                  frontier-parallel
//                                                  worklist
//   query <file> "<q(X) :- ...>"                   certain answers
//   findshapes <file> [--backend=memory|disk|index]
//              [--mode=scan|exists|index] [--threads=N]
//              [--pool-shards=N] [--prefetch=K]
//              [--absorb=parallel|serial]
//              [--snapshot=path.chidx]             shape(D) via ShapeSource
//   index build <file> <out.chidx> [--backend=memory|disk] [--threads=N]
//              [--shards=N]                        materialize shape(D)
//   index stat <snapshot.chidx>                    snapshot diagnostics
//   stats <file>                                   Table-1-style statistics
//   zoo <file>                                     acyclicity zoo verdicts
//   generate <out> [--preds=N] [--tgds=N] [--tuples=N] [--arity=N]
//            [--class=sl|l] [--seed=N] [--binary]  synthesize a workload
//   convert <in> <out>                             text <-> binary (by
//                                                  extension: .chbin)
//
// Files ending in .chbin are read/written with the binary format
// (io/binary_io.h); .chidx files are sharded-shape-index snapshots;
// anything else uses the Datalog± text syntax.
//
// check, chase, simplify, and findshapes additionally take
// --trace=FILE (Chrome trace-event JSON for Perfetto/chrome://tracing)
// and --metrics=FILE (metrics-registry JSON dump) — see README
// "Observability".

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "acyclicity/joint_acyclicity.h"
#include "acyclicity/mfa.h"
#include "acyclicity/super_weak_acyclicity.h"
#include "acyclicity/uniform.h"
#include "base/status.h"
#include "base/timer.h"
#include "chase/chase_engine.h"
#include "core/dynamic_simplification.h"
#include "core/explain.h"
#include "core/is_chase_finite.h"
#include "core/normalize.h"
#include "core/weak_acyclicity.h"
#include "exec/frontier_pool.h"
#include "gen/data_generator.h"
#include "gen/tgd_generator.h"
#include "graph/dependency_graph.h"
#include "graph/dot.h"
#include "index/find_shapes.h"
#include "index/sharded_shape_index.h"
#include "io/binary_io.h"
#include "logic/atom.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "logic/schema.h"
#include "logic/shape.h"
#include "logic/term.h"
#include "logic/tgd.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "pager/buffer_pool.h"
#include "pager/disk_database.h"
#include "pager/disk_shape_source.h"
#include "query/conjunctive_query.h"
#include "storage/catalog.h"
#include "storage/shape_finder.h"
#include "storage/shape_source.h"

namespace {

using namespace chase;

// ---------------------------------------------------------------------------
// Small flag parser: positional arguments plus --key=value / --key.

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  static Args Parse(int argc, char** argv, int start) {
    Args args;
    for (int i = start; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        const size_t eq = arg.find('=');
        if (eq == std::string::npos) {
          args.flags[arg.substr(2)] = "true";
        } else {
          args.flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
        }
      } else {
        args.positional.push_back(std::move(arg));
      }
    }
    return args;
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  bool Has(const std::string& key) const { return flags.count(key) > 0; }
};

bool IsBinaryPath(const std::string& path) {
  return path.size() > 6 && path.compare(path.size() - 6, 6, ".chbin") == 0;
}

// Parses an integer flag into [lo, hi]; diagnoses and returns false on
// non-numeric, negative, or out-of-range values — every numeric flag goes
// through here, so a malformed value is a diagnosed exit-code-2 failure,
// never an uncaught std::invalid_argument out of a raw conversion.
bool ParseU64Flag(const Args& args, const std::string& key, uint64_t fallback,
                  uint64_t lo, uint64_t hi, uint64_t* out) {
  const std::string raw = args.Get(key, std::to_string(fallback));
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw.c_str(), &end, 10);
  if (raw.empty() || end == raw.c_str() || *end != '\0' || raw[0] == '-' ||
      errno == ERANGE || value < lo || value > hi) {
    std::cerr << "bad --" << key << "=" << raw << " (want an integer in ["
              << lo << ", " << hi << "])\n";
    return false;
  }
  *out = value;
  return true;
}

bool ParseBoundedFlag(const Args& args, const std::string& key,
                      uint64_t fallback, uint64_t lo, uint64_t hi,
                      unsigned* out) {
  uint64_t value = 0;
  if (!ParseU64Flag(args, key, fallback, lo, hi, &value)) return false;
  *out = static_cast<unsigned>(value);
  return true;
}

bool ParseThreads(const Args& args, unsigned* threads) {
  return ParseBoundedFlag(args, "threads", 1, 1, 1024, threads);
}

// 0 = the index's default shard count.
bool ParseShards(const Args& args, unsigned* shards) {
  return ParseBoundedFlag(args, "shards", 0, 0,
                          index::ShardedShapeIndex::kMaxShards, shards);
}

// 0 = auto (the buffer pool splits only when large enough).
bool ParsePoolShards(const Args& args, unsigned* pool_shards) {
  return ParseBoundedFlag(args, "pool-shards", 0, 0, 256, pool_shards);
}

// Pool size for a disk-backend run: per-shard capacity must cover one
// pinned page per scan worker even if every worker's pin lands in one
// shard, i.e. frames >= threads x shards (auto-sharding splits into at
// most BufferPool::kDefaultShards). Capped so pathological flag
// combinations don't balloon memory — past the cap the pool falls back on
// its bounded pin-wait.
uint32_t DiskPoolFrames(unsigned threads, unsigned pool_shards) {
  const unsigned shards =
      pool_shards == 0 ? pager::BufferPool::kDefaultShards : pool_shards;
  const uint64_t frames = std::max<uint64_t>(
      {64, 8ull * std::max(1u, threads),
       static_cast<uint64_t>(std::max(1u, threads)) * shards});
  return static_cast<uint32_t>(std::min<uint64_t>(frames, 1u << 16));
}

// Read-ahead depth in pages; 0 = off.
bool ParsePrefetch(const Args& args, unsigned* prefetch) {
  return ParseBoundedFlag(args, "prefetch", 0, 0, 1u << 16, prefetch);
}

// --absorb=parallel|serial -> how the exists plan's frontier engine
// absorbs each depth's confirmed shapes (results identical either way;
// serial keeps the differential oracle path reachable from the CLI).
bool ParseAbsorb(const Args& args, bool* parallel_absorb) {
  const std::string raw = args.Get("absorb", "parallel");
  if (raw == "parallel") {
    *parallel_absorb = true;
  } else if (raw == "serial") {
    *parallel_absorb = false;
  } else {
    std::cerr << "unknown --absorb=" << raw << " (want parallel or serial)\n";
    return false;
  }
  return true;
}

// --mode=scan|exists|index -> the FindShapes query plan.
bool ParseFinderMode(const Args& args, storage::ShapeFinderMode* mode) {
  const std::string raw = args.Get("mode", "scan");
  if (raw == "scan") {
    *mode = storage::ShapeFinderMode::kScan;
  } else if (raw == "exists") {
    *mode = storage::ShapeFinderMode::kExists;
  } else if (raw == "index") {
    *mode = storage::ShapeFinderMode::kIndex;
  } else {
    std::cerr << "unknown --mode=" << raw
              << " (want scan, exists, or index)\n";
    return false;
  }
  return true;
}

// Default scratch paths are per-invocation so concurrent runs don't stomp
// each other's heap files.
std::string ScratchStorePath(const Args& args, const std::string& stem) {
  return args.Get("store", "/tmp/" + stem + "." +
                               std::to_string(::getpid()) + ".db");
}

StatusOr<Program> LoadAnyProgram(const std::string& path) {
  if (IsBinaryPath(path)) return io::LoadProgram(path);
  return ParseProgramFile(path);
}

Status SaveAnyProgram(const Program& program, const std::string& path) {
  if (IsBinaryPath(path)) {
    return io::SaveProgram(*program.schema, *program.database, program.tgds,
                           path);
  }
  std::ofstream out(path);
  if (!out) return InternalError("cannot create file: " + path);
  PrintDatabase(*program.database, out);
  PrintTgds(*program.schema, program.tgds, out);
  return out.good() ? OkStatus() : InternalError("short write: " + path);
}

int Fail(const Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

// ---------------------------------------------------------------------------
// Observability wiring shared by the long-running subcommands:
// --trace=FILE records the run as Chrome trace-event JSON (Perfetto /
// chrome://tracing), --metrics=FILE dumps the metrics registry as JSON.
// Both paths are probed (opened) BEFORE the run, so a typo'd directory is
// a clean up-front failure — not an hour-long chase whose artifact then
// fails to write.

struct ObsSession {
  std::string trace_path;
  std::string metrics_path;

  // Returns 0 when the run may proceed, else the exit code: 2 for a
  // flag-syntax error, 1 for an unwritable path.
  int Begin(const Args& args) {
    if (args.Has("trace") && args.Get("trace", "") == "true") {
      std::cerr << "bad --trace (want --trace=FILE)\n";
      return 2;
    }
    if (args.Has("metrics") && args.Get("metrics", "") == "true") {
      std::cerr << "bad --metrics (want --metrics=FILE)\n";
      return 2;
    }
    trace_path = args.Get("trace", "");
    metrics_path = args.Get("metrics", "");
    for (const std::string& path : {trace_path, metrics_path}) {
      if (path.empty()) continue;
      std::ofstream probe(path, std::ios::trunc);
      if (!probe) {
        return Fail(InternalError("cannot write file: " + path));
      }
    }
    if (!metrics_path.empty()) {
      obs::MetricsRegistry::Get().Reset();
      obs::MetricsRegistry::SetEnabled(true);
    }
    if (!trace_path.empty()) obs::TraceRecorder::Get().Start();
    return 0;
  }

  // Writes the artifacts (stopping the recorders). Returns the exit code.
  int End() {
    if (!trace_path.empty()) {
      obs::TraceRecorder& recorder = obs::TraceRecorder::Get();
      if (Status status = recorder.WriteJsonFile(trace_path); !status.ok()) {
        return Fail(status);
      }
      std::cerr << "wrote trace: " << trace_path << " ("
                << recorder.recorded() << " events, " << recorder.dropped()
                << " dropped)\n";
    }
    if (!metrics_path.empty()) {
      obs::MetricsRegistry::SetEnabled(false);
      std::ofstream out(metrics_path);
      obs::MetricsRegistry::Get().DumpJson(out);
      if (!out.good()) {
        return Fail(InternalError("short write: " + metrics_path));
      }
      std::cerr << "wrote metrics: " << metrics_path << "\n";
    }
    return 0;
  }
};

// --progress[=SECS]: live chase status lines on stderr. Bare --progress
// means a 2-second tick; an explicit value must be a whole number of
// seconds in [1, 86400].
bool ParseProgress(const Args& args,
                   std::optional<std::chrono::seconds>* interval) {
  if (!args.Has("progress")) return true;
  if (args.Get("progress", "") == "true") {  // bare --progress
    *interval = std::chrono::seconds(2);
    return true;
  }
  uint64_t secs = 0;
  if (!ParseU64Flag(args, "progress", 2, 1, 86'400, &secs)) return false;
  *interval = std::chrono::seconds(secs);
  return true;
}

// --metrics-interval=SECS: periodic metrics-registry JSON dumps on stderr
// for watching a live chase. Whole seconds in [1, 86400]; no bare form —
// the flag names a cadence, so a value is required.
bool ParseMetricsInterval(const Args& args,
                          std::optional<std::chrono::seconds>* interval) {
  if (!args.Has("metrics-interval")) return true;
  if (args.Get("metrics-interval", "") == "true") {
    std::cerr << "bad --metrics-interval (want --metrics-interval=SECS)\n";
    return false;
  }
  uint64_t secs = 0;
  if (!ParseU64Flag(args, "metrics-interval", 2, 1, 86'400, &secs)) {
    return false;
  }
  *interval = std::chrono::seconds(secs);
  return true;
}

// ---------------------------------------------------------------------------
// check

int CmdCheck(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: chasectl check <file> [--mode=sl|l] "
                 "[--shapes=mem|db|index] [--threads=N] "
                 "[--snapshot=path.chidx] [--trace=FILE] [--metrics=FILE]\n";
    return 2;
  }
  ObsSession obs_session;
  if (int rc = obs_session.Begin(args); rc != 0) return rc;

  Timer parse_timer;
  auto program = [&] {
    obs::TraceSpan parse_span("check", "t_parse");
    return LoadAnyProgram(args.positional[0]);
  }();
  if (!program.ok()) return Fail(program.status());
  obs::TimeParams times;
  times.parse_ms = parse_timer.ElapsedMillis();

  const std::string mode =
      args.Get("mode", AllSimpleLinear(program->tgds) ? "sl" : "l");
  Timer timer;
  if (mode == "sl") {
    SlCheckStats stats;
    auto finite = IsChaseFiniteSL(*program->database, program->tgds, &stats);
    if (!finite.ok()) return Fail(finite.status());
    times.graph_ms = stats.graph_ms;
    times.comp_ms = stats.comp_ms + stats.support_ms;
    obs::RecordTimeParams("check", times);
    std::cout << (finite.value() ? "FINITE" : "INFINITE") << "\n"
              << "  algorithm: IsChaseFinite[SL] (Algorithm 1)\n"
              << "  t-parse: " << times.parse_ms << " ms\n"
              << "  t-graph: " << stats.graph_ms << " ms ("
              << stats.graph_nodes << " nodes, " << stats.graph_edges
              << " edges)\n"
              << "  t-comp:  " << stats.comp_ms << " ms ("
              << stats.special_sccs << " special SCCs)\n"
              << "  t-total: " << timer.ElapsedMillis() << " ms\n";
  } else if (mode == "l") {
    LCheckOptions options;
    // One knob drives both parallel components: the db-dependent FindShapes
    // and the dynamic-simplification worklist.
    unsigned threads = 1;
    if (!ParseThreads(args, &threads)) return 2;
    options.shape_threads = threads;
    options.simplify_threads = threads;
    const std::string shapes_flag = args.Get("shapes", "mem");
    std::optional<index::ShardedShapeIndex> shape_index;
    if (shapes_flag == "db") {
      options.shape_finder = storage::ShapeFinderMode::kInDatabase;
    } else if (shapes_flag == "index") {
      // The Section 10 deployment: shape(D) comes from the materialized
      // index — loaded from a snapshot when given, built once otherwise.
      if (args.Has("snapshot")) {
        auto loaded = index::ShardedShapeIndex::Load(args.Get("snapshot", ""));
        if (!loaded.ok()) return Fail(loaded.status());
        // Staleness guard: a snapshot of this database indexes exactly its
        // tuples (cheap count check first), and its content fingerprint
        // matches the database's — so a remove+insert pair that preserves
        // counts is still caught. (Library callers of precomputed shapes
        // have a documented contract; CLI users get a check.)
        if (loaded->NumIndexedTuples() !=
            program->database->TotalFacts()) {
          return Fail(FailedPreconditionError(
              "snapshot indexes " +
              std::to_string(loaded->NumIndexedTuples()) +
              " tuples but the database holds " +
              std::to_string(program->database->TotalFacts()) +
              " — stale or mismatched snapshot; rebuild with "
              "`chasectl index build`"));
        }
        if (loaded->ContentFingerprint() !=
            index::DatabaseFingerprint(*program->database)) {
          return Fail(FailedPreconditionError(
              "snapshot content fingerprint does not match the database "
              "(same tuple count, different tuples) — stale or mismatched "
              "snapshot; rebuild with `chasectl index build`"));
        }
        shape_index.emplace(std::move(loaded).value());
      } else {
        shape_index.emplace(
            index::ShardedShapeIndex::Build(*program->database));
      }
      options.shape_index = &*shape_index;
    } else if (shapes_flag == "mem") {
      options.shape_finder = storage::ShapeFinderMode::kInMemory;
    } else {
      std::cerr << "unknown --shapes=" << shapes_flag
                << " (want mem, db, or index)\n";
      return 2;
    }
    LCheckStats stats;
    auto finite =
        IsChaseFiniteL(*program->database, program->tgds, options, &stats);
    if (!finite.ok()) return Fail(finite.status());
    times.shapes_ms = stats.shapes_ms;
    times.graph_ms = stats.graph_ms;
    times.comp_ms = stats.comp_ms;
    obs::RecordTimeParams("check", times);
    std::cout << (finite.value() ? "FINITE" : "INFINITE") << "\n"
              << "  algorithm: IsChaseFinite[L] (Algorithm 3)\n"
              << "  t-parse:  " << times.parse_ms << " ms\n"
              << "  t-shapes: " << stats.shapes_ms << " ms ("
              << stats.num_initial_shapes << " db shapes, "
              << stats.num_derived_shapes << " derived)\n"
              << "  t-graph:  " << stats.graph_ms << " ms ("
              << stats.num_simplified_tgds << " simplified TGDs, "
              << stats.graph_edges << " edges)\n"
              << "  t-comp:   " << stats.comp_ms << " ms\n"
              << "  t-total:  " << timer.ElapsedMillis() << " ms\n";
  } else {
    std::cerr << "unknown --mode=" << mode << " (want sl or l)\n";
    return 2;
  }
  return obs_session.End();
}

// ---------------------------------------------------------------------------
// chase

int CmdChase(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: chasectl chase <file> [--variant=so|ob|re] "
                 "[--max-atoms=N] [--max-rounds=N] [--threads=N] "
                 "[--hom-budget=N] [--checkpoint=FILE] "
                 "[--checkpoint-every=N] [--resume=FILE] "
                 "[--progress[=SECS]] [--trace=FILE] [--metrics=FILE] "
                 "[--metrics-interval=SECS] [--print]\n";
    return 2;
  }
  ObsSession obs_session;
  if (int rc = obs_session.Begin(args); rc != 0) return rc;
  std::optional<std::chrono::seconds> progress_interval;
  if (!ParseProgress(args, &progress_interval)) return 2;
  std::optional<std::chrono::seconds> metrics_interval;
  if (!ParseMetricsInterval(args, &metrics_interval)) return 2;
  if (metrics_interval.has_value() && !args.Has("metrics")) {
    // Interval dumps without a --metrics artifact still need a live
    // registry; start it from zero like ObsSession does.
    obs::MetricsRegistry::Get().Reset();
    obs::MetricsRegistry::SetEnabled(true);
  }

  auto program = LoadAnyProgram(args.positional[0]);
  if (!program.ok()) return Fail(program.status());

  ChaseOptions options;
  if (!ParseThreads(args, &options.frontier_threads)) return 2;
  const std::string variant = args.Get("variant", "so");
  if (variant == "so") {
    options.variant = ChaseVariant::kSemiOblivious;
  } else if (variant == "ob") {
    options.variant = ChaseVariant::kOblivious;
  } else if (variant == "re") {
    options.variant = ChaseVariant::kRestricted;
  } else {
    std::cerr << "unknown --variant=" << variant << " (want so, ob, re)\n";
    return 2;
  }
  if (!ParseU64Flag(args, "max-atoms", 1'000'000, 1, UINT64_MAX,
                    &options.max_atoms)) {
    return 2;
  }
  if (!ParseU64Flag(args, "max-rounds", UINT64_MAX, 0, UINT64_MAX,
                    &options.max_rounds)) {
    return 2;
  }
  // Per-fragment homomorphism buffer of the parallel non-linear engine
  // (peak buffered homs <= threads x budget); ignored when --threads=1.
  if (!ParseU64Flag(args, "hom-budget", options.hom_budget, 1, UINT64_MAX,
                    &options.hom_budget)) {
    return 2;
  }

  // --checkpoint=FILE [--checkpoint-every=N] / --resume=FILE: the
  // checkpoint/restart protocol (README "Checkpoint & resume").
  // --checkpoint also arms the signal path: SIGUSR1 = checkpoint and
  // continue, SIGTERM = checkpoint and stop ("interrupted", exit 0).
  if (args.Has("checkpoint") && args.Get("checkpoint", "") == "true") {
    std::cerr << "bad --checkpoint (want --checkpoint=FILE)\n";
    return 2;
  }
  if (args.Has("resume") && args.Get("resume", "") == "true") {
    std::cerr << "bad --resume (want --resume=FILE)\n";
    return 2;
  }
  options.checkpoint_path = args.Get("checkpoint", "");
  if (args.Has("checkpoint-every")) {
    if (options.checkpoint_path.empty()) {
      std::cerr << "--checkpoint-every requires --checkpoint=FILE\n";
      return 2;
    }
    if (!ParseU64Flag(args, "checkpoint-every", 1, 1, UINT64_MAX,
                      &options.checkpoint_every_rounds)) {
      return 2;
    }
  }
  if (!options.checkpoint_path.empty()) {
    options.checkpoint_on_signal = true;
    // Probe the temp path of the write-temp-then-rename pair up front,
    // mirroring the --trace/--metrics probes: a typo'd directory is a
    // clean failure now, not an hour into the chase.
    const std::string probe_path = options.checkpoint_path + ".tmp";
    std::ofstream probe(probe_path, std::ios::trunc);
    if (!probe) {
      return Fail(InternalError("cannot write file: " + probe_path));
    }
    probe.close();
    std::remove(probe_path.c_str());
  }
  std::optional<io::ChaseCheckpoint> resume_checkpoint;
  if (args.Has("resume")) {
    auto loaded = io::LoadChaseCheckpoint(args.Get("resume", ""));
    if (!loaded.ok()) return Fail(loaded.status());
    resume_checkpoint.emplace(std::move(loaded).value());
    options.resume = &*resume_checkpoint;
    // Without an explicit --variant the resumed run adopts the
    // checkpoint's (an explicit mismatch is diagnosed by the engine).
    if (!args.Has("variant")) {
      options.variant = static_cast<ChaseVariant>(resume_checkpoint->variant);
    }
  }

  // The reporter samples the sink from its own thread; Stop() before
  // reading the result so the final line lands ahead of the summary.
  obs::ChaseProgressSink progress_sink;
  std::optional<obs::ProgressReporter> reporter;
  if (progress_interval.has_value()) {
    options.progress = &progress_sink;
    reporter.emplace(&std::cerr, &progress_sink, *progress_interval);
  }
  std::optional<obs::MetricsDumper> metrics_dumper;
  if (metrics_interval.has_value()) {
    metrics_dumper.emplace(&std::cerr, *metrics_interval);
  }
  Timer timer;
  auto result = RunChase(*program->database, program->tgds, options);
  const double chase_ms = timer.ElapsedMillis();
  if (metrics_dumper.has_value()) metrics_dumper->Stop();
  if (reporter.has_value()) reporter->Stop();
  if (!result.ok()) return Fail(result.status());
  std::cout << ChaseVariantName(options.variant) << " chase: "
            << ChaseOutcomeName(result->outcome) << " after "
            << result->rounds << " rounds, " << result->triggers_fired
            << " triggers, " << result->instance.NumAtoms() << " atoms, "
            << chase_ms << " ms\n"
            << "  prefiltered: " << result->triggers_prefiltered
            << " satisfied trigger(s) skipped on the worker pool\n"
            << "  peak buffered homs: " << result->peak_buffered_homs
            << " (parallel non-linear engine; 0 = serial path)\n";
  if (args.Has("print")) {
    result->instance.ForEachAtom([&](const GroundAtom& atom) {
      std::cout << ToString(*program->schema, *program->database, atom)
                << ".\n";
    });
  }
  return obs_session.End();
}

// ---------------------------------------------------------------------------
// simplify

int CmdSimplify(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: chasectl simplify <file> "
                 "[--mode=scan|exists|index] [--threads=N] [--trace=FILE] "
                 "[--metrics=FILE] [--print]\n";
    return 2;
  }
  ObsSession obs_session;
  if (int rc = obs_session.Begin(args); rc != 0) return rc;
  auto program = LoadAnyProgram(args.positional[0]);
  if (!program.ok()) return Fail(program.status());
  if (!AllLinear(program->tgds)) {
    std::cerr << "simplify requires linear TGDs\n";
    return 2;
  }

  unsigned threads = 1;
  if (!ParseThreads(args, &threads)) return 2;
  storage::ShapeFinderMode finder_mode;
  if (!ParseFinderMode(args, &finder_mode)) return 2;

  storage::Catalog catalog(program->database.get());
  storage::MemoryShapeSource source(&catalog);
  Timer timer;
  auto shapes = index::FindShapes(
      source, {.mode = finder_mode, .threads = threads});
  if (!shapes.ok()) return Fail(shapes.status());
  const double shapes_ms = timer.ElapsedMillis();

  timer.Restart();
  auto simplified = DynamicSimplificationFromShapes(
      program->database->schema(), program->tgds, *shapes, threads);
  if (!simplified.ok()) return Fail(simplified.status());
  const double simplify_ms = timer.ElapsedMillis();

  const FrontierStats& frontier = simplified->frontier;
  std::cout << simplified->tgds.size() << " simplified TGD(s) from "
            << program->tgds.size() << " rule(s)\n"
            << "  t-shapes:   " << shapes_ms << " ms ("
            << storage::ShapeFinderModeName(finder_mode) << " plan, "
            << threads << " thread(s), " << shapes->size()
            << " db shapes)\n"
            << "  t-simplify: " << simplify_ms << " ms ("
            << simplified->num_initial_shapes << " initial shapes, "
            << simplified->num_derived_shapes << " derived)\n"
            << "  frontier:   " << frontier.depths << " depth(s), "
            << frontier.items_expanded << " expanded, widest "
            << frontier.max_frontier << "\n";
  if (args.Has("print")) {
    for (const Tgd& tgd : simplified->tgds) {
      std::cout << ToString(simplified->shape_schema->schema(), tgd) << "\n";
    }
  }
  return obs_session.End();
}

// ---------------------------------------------------------------------------
// query

int CmdQuery(const Args& args) {
  if (args.positional.size() < 2) {
    std::cerr << "usage: chasectl query <file> \"q(X) :- ...\"\n";
    return 2;
  }
  auto program = LoadAnyProgram(args.positional[0]);
  if (!program.ok()) return Fail(program.status());
  auto cq = query::ParseQuery(args.positional[1], program->schema.get());
  if (!cq.ok()) return Fail(cq.status());
  auto result = query::CertainAnswers(*program->database, program->tgds, *cq);
  if (!result.ok()) return Fail(result.status());
  std::cout << result->answers.size() << " certain answer(s) over a chase of "
            << result->chase_atoms << " atoms\n";
  for (const query::Answer& answer : result->answers) {
    if (answer.empty()) {
      std::cout << "true\n";
      continue;
    }
    for (size_t i = 0; i < answer.size(); ++i) {
      std::cout << (i > 0 ? ", " : "")
                << program->database->ConstantName(ConstantId(answer[i]));
    }
    std::cout << "\n";
  }
  return 0;
}

// ---------------------------------------------------------------------------
// stats

int CmdStats(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: chasectl stats <file>\n";
    return 2;
  }
  auto program = LoadAnyProgram(args.positional[0]);
  if (!program.ok()) return Fail(program.status());

  uint32_t min_arity = UINT32_MAX, max_arity = 0;
  for (PredId pred = 0; pred < program->schema->NumPredicates(); ++pred) {
    min_arity = std::min(min_arity, program->schema->Arity(pred));
    max_arity = std::max(max_arity, program->schema->Arity(pred));
  }
  storage::Catalog catalog(program->database.get());
  storage::MemoryShapeSource shape_source(&catalog);
  // The in-memory scan cannot fail.
  const size_t n_shapes =
      storage::FindShapes(shape_source, {}).value().size();
  std::cout << "n-pred:   " << program->schema->NumPredicates() << "\n"
            << "arity:    [" << (min_arity == UINT32_MAX ? 0 : min_arity)
            << "," << max_arity << "]\n"
            << "n-atoms:  " << program->database->TotalFacts() << "\n"
            << "n-shapes: " << n_shapes << "\n"
            << "n-rules:  " << program->tgds.size() << "\n"
            << "class:    "
            << (AllSimpleLinear(program->tgds)
                    ? "simple-linear"
                    : AllLinear(program->tgds) ? "linear" : "general")
            << "\n";
  return 0;
}

// ---------------------------------------------------------------------------
// findshapes

int CmdFindShapes(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: chasectl findshapes <file> "
                 "[--backend=memory|disk|index] [--mode=scan|exists|index] "
                 "[--threads=N] [--shards=N] [--pool-shards=N] "
                 "[--prefetch=K] [--absorb=parallel|serial] "
                 "[--snapshot=path.chidx] [--store=path.db] [--trace=FILE] "
                 "[--metrics=FILE] [--print]\n";
    return 2;
  }
  ObsSession obs_session;
  if (int rc = obs_session.Begin(args); rc != 0) return rc;

  // Snapshot fast path: shape(D) straight out of a persisted index, no
  // database access at all.
  if (args.Has("snapshot")) {
    auto loaded = index::ShardedShapeIndex::Load(args.Get("snapshot", ""));
    if (!loaded.ok()) return Fail(loaded.status());
    Timer timer;
    const std::vector<Shape> shapes = loaded->CurrentShapes();
    std::cout << shapes.size() << " shape(s) over "
              << loaded->NumIndexedTuples() << " indexed tuples\n"
              << "  backend: snapshot (" << loaded->num_shards()
              << " shards), plan: index\n"
              << "  t-shapes: " << timer.ElapsedMillis() << " ms\n";
    if (args.Has("print")) {
      auto program = LoadAnyProgram(args.positional[0]);
      if (!program.ok()) return Fail(program.status());
      for (const Shape& shape : shapes) {
        std::cout << ShapeName(*program->schema, shape) << "\n";
      }
    }
    return obs_session.End();
  }

  auto program = LoadAnyProgram(args.positional[0]);
  if (!program.ok()) return Fail(program.status());

  storage::FindShapesOptions options;
  if (!ParseShards(args, &options.index_shards)) return 2;
  if (!ParsePrefetch(args, &options.prefetch)) return 2;
  unsigned pool_shards = 0;
  if (!ParsePoolShards(args, &pool_shards)) return 2;
  if (!ParseFinderMode(args, &options.mode)) return 2;
  if (!ParseThreads(args, &options.threads)) return 2;
  if (!ParseAbsorb(args, &options.parallel_absorb)) return 2;

  std::string backend = args.Get("backend", "memory");
  if (backend == "index") {
    // "index" as a backend: the row store behind the materialized-index
    // plan, matching `chasectl index build --backend=memory`.
    if (args.Has("mode") &&
        options.mode != storage::ShapeFinderMode::kIndex) {
      std::cerr << "--backend=index runs the index plan; it cannot be "
                   "combined with --mode=" << args.Get("mode", "") << "\n";
      return 2;
    }
    backend = "memory";
    options.mode = storage::ShapeFinderMode::kIndex;
  }
  storage::Catalog catalog(program->database.get());
  storage::MemoryShapeSource memory_source(&catalog);
  std::unique_ptr<pager::DiskDatabase> disk_db;
  std::unique_ptr<pager::DiskShapeSource> disk_source;
  const storage::ShapeSource* source = &memory_source;
  const bool keep_store = args.Has("store");
  const std::string store_path =
      ScratchStorePath(args, "chasectl_findshapes");
  if (backend == "disk") {
    auto created = pager::DiskDatabase::Create(
        store_path, *program->database,
        DiskPoolFrames(options.threads, pool_shards), pool_shards);
    if (!created.ok()) return Fail(created.status());
    disk_db = std::move(created).value();
    disk_source = std::make_unique<pager::DiskShapeSource>(disk_db.get());
    source = disk_source.get();
  } else if (backend != "memory") {
    std::cerr << "unknown --backend=" << backend
              << " (want memory, disk, or index)\n";
    return 2;
  }

  // Io() reports cumulative store-lifetime counters; snapshot before the
  // run so the report excludes the Create-phase load above.
  const storage::IoCounters io_before = source->Io();
  Timer timer;
  auto shapes = index::FindShapes(*source, options);
  const double elapsed_ms = timer.ElapsedMillis();
  if (!shapes.ok()) return Fail(shapes.status());

  const storage::AccessStats& access = source->stats();
  const storage::IoCounters io = source->Io().Since(io_before);
  // Mirror the per-run access/I-O report into the metrics artifact so a
  // --metrics run is machine-readable without scraping stdout.
  obs::SetGauge("findshapes.t_shapes_ms", elapsed_ms);
  obs::SetGauge("findshapes.exists_queries",
                static_cast<double>(access.exists_queries));
  obs::SetGauge("findshapes.relations_loaded",
                static_cast<double>(access.relations_loaded));
  obs::SetGauge("findshapes.tuples_scanned",
                static_cast<double>(access.tuples_scanned));
  obs::SetGauge("findshapes.pages_read",
                static_cast<double>(io.pages_read));
  obs::SetGauge("findshapes.pool_hits", static_cast<double>(io.pool_hits));
  obs::SetGauge("findshapes.pool_misses",
                static_cast<double>(io.pool_misses));
  obs::SetGauge("findshapes.pool_prefetches",
                static_cast<double>(io.pool_prefetches));
  std::cout << shapes->size() << " shape(s) over "
            << program->database->TotalFacts() << " tuples\n"
            << "  backend: " << source->Name() << ", plan: "
            << storage::ShapeFinderModeName(options.mode)
            << ", threads: " << std::max(1u, options.threads) << "\n"
            << "  t-shapes: " << elapsed_ms << " ms\n"
            << "  accesses: " << access.exists_queries << " exists queries, "
            << access.relations_loaded << " relation loads, "
            << access.tuples_scanned << " tuples scanned\n"
            << "  io: " << io.pages_read << " pages read, " << io.pool_hits
            << " pool hits / " << io.pool_misses << " misses, "
            << io.pool_prefetches << " prefetched\n";
  if (args.Has("print")) {
    for (const Shape& shape : *shapes) {
      std::cout << ShapeName(*program->schema, shape) << "\n";
    }
  }
  // Close the pager (flush + stats quiesce) before the trace is written so
  // fault/prefetch spans from pool teardown are in the artifact.
  const bool had_disk = disk_db != nullptr;
  disk_source.reset();
  disk_db.reset();
  if (had_disk && !keep_store) std::remove(store_path.c_str());
  return obs_session.End();
}

// ---------------------------------------------------------------------------
// index

int CmdIndex(const Args& args) {
  const std::string usage =
      "usage: chasectl index build <file> <out.chidx> "
      "[--backend=memory|disk] [--threads=N] [--shards=N] [--store=path.db]\n"
      "       chasectl index stat <snapshot.chidx>\n";
  if (args.positional.empty()) {
    std::cerr << usage;
    return 2;
  }
  const std::string verb = args.positional[0];

  if (verb == "stat") {
    if (args.positional.size() < 2) {
      std::cerr << usage;
      return 2;
    }
    auto loaded = index::ShardedShapeIndex::Load(args.positional[1]);
    if (!loaded.ok()) return Fail(loaded.status());
    const size_t num_shapes = loaded->NumShapes();
    size_t min_shard = SIZE_MAX, max_shard = 0;
    for (unsigned s = 0; s < loaded->num_shards(); ++s) {
      const size_t n = loaded->ShardNumShapes(s);
      min_shard = std::min(min_shard, n);
      max_shard = std::max(max_shard, n);
    }
    std::cout << "shards:        " << loaded->num_shards() << "\n"
              << "shapes:        " << num_shapes << "\n"
              << "tuples:        " << loaded->NumIndexedTuples() << "\n"
              << "shard shapes:  [" << (num_shapes == 0 ? 0 : min_shard)
              << ", " << max_shard << "]\n";
    return 0;
  }

  if (verb != "build" || args.positional.size() < 3) {
    std::cerr << usage;
    return 2;
  }
  auto program = LoadAnyProgram(args.positional[1]);
  if (!program.ok()) return Fail(program.status());

  index::IndexBuildOptions options;
  if (!ParseThreads(args, &options.threads)) return 2;
  if (!ParseShards(args, &options.shards)) return 2;

  storage::Catalog catalog(program->database.get());
  storage::MemoryShapeSource memory_source(&catalog);
  std::unique_ptr<pager::DiskDatabase> disk_db;
  std::unique_ptr<pager::DiskShapeSource> disk_source;
  const storage::ShapeSource* source = &memory_source;
  const std::string backend = args.Get("backend", "memory");
  const bool keep_store = args.Has("store");
  const std::string store_path = ScratchStorePath(args, "chasectl_index");
  if (backend == "disk") {
    auto created = pager::DiskDatabase::Create(
        store_path, *program->database,
        DiskPoolFrames(options.threads, /*pool_shards=*/0));
    if (!created.ok()) return Fail(created.status());
    disk_db = std::move(created).value();
    disk_source = std::make_unique<pager::DiskShapeSource>(disk_db.get());
    source = disk_source.get();
  } else if (backend != "memory") {
    std::cerr << "unknown --backend=" << backend
              << " (want memory or disk)\n";
    return 2;
  }
  auto cleanup_store = [&] {
    if (disk_db != nullptr && !keep_store) {
      disk_db.reset();  // close before unlinking
      std::remove(store_path.c_str());
    }
  };

  Timer timer;
  auto built = index::ShardedShapeIndex::Build(*source, options);
  const double build_ms = timer.ElapsedMillis();
  if (!built.ok()) {
    cleanup_store();
    return Fail(built.status());
  }
  if (Status status = built->Save(args.positional[2]); !status.ok()) {
    cleanup_store();
    return Fail(status);
  }
  std::cout << "indexed " << built->NumIndexedTuples() << " tuples ("
            << built->NumShapes() << " shapes) into "
            << built->num_shards() << " shards in " << build_ms << " ms ("
            << source->Name() << " backend, " << options.threads
            << " threads)\n"
            << "wrote " << args.positional[2] << "\n";
  cleanup_store();
  return 0;
}

// ---------------------------------------------------------------------------
// zoo

int CmdZoo(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: chasectl zoo <file>\n";
    return 2;
  }
  auto program = LoadAnyProgram(args.positional[0]);
  if (!program.ok()) return Fail(program.status());
  const Schema& schema = *program->schema;
  const std::vector<Tgd>& tgds = program->tgds;

  auto report = [](const char* name, const char* verdict, double ms) {
    std::cout << "  " << name << ": " << verdict << " (" << ms << " ms)\n";
  };
  std::cout << "uniform termination criteria (database-independent):\n";
  Timer timer;
  const bool wa = IsWeaklyAcyclic(schema, tgds);
  report("weak acyclicity       ", wa ? "acyclic" : "cyclic",
         timer.ElapsedMillis());
  timer.Restart();
  const bool ja = acyclicity::IsJointlyAcyclic(schema, tgds);
  report("joint acyclicity      ", ja ? "acyclic" : "cyclic",
         timer.ElapsedMillis());
  timer.Restart();
  const bool swa = acyclicity::IsSuperWeaklyAcyclic(schema, tgds);
  report("super-weak acyclicity ", swa ? "acyclic" : "cyclic",
         timer.ElapsedMillis());
  timer.Restart();
  auto mfa = acyclicity::IsModelFaithfulAcyclic(schema, tgds);
  report("MFA                   ",
         mfa.ok() ? (mfa.value() ? "acyclic" : "cyclic") : "budget exceeded",
         timer.ElapsedMillis());
  if (AllLinear(tgds) && AllHaveNonEmptyFrontier(tgds) && !tgds.empty()) {
    timer.Restart();
    auto exact = acyclicity::IsChaseFiniteUniform(schema, tgds);
    if (exact.ok()) {
      report("exact (linear)        ",
             exact.value() ? "terminates for all D" : "diverges for some D",
             timer.ElapsedMillis());
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// generate

int CmdGenerate(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: chasectl generate <out> [--preds=N] [--tgds=N] "
                 "[--tuples=N] [--arity=N] [--class=sl|l] [--seed=N]\n";
    return 2;
  }
  // Schema::kMaxArity bounds arity; the other caps only keep pathological
  // flag values from looking like hangs.
  unsigned preds = 0, arity = 0;
  uint64_t domain = 0, tuples = 0, seed = 0, num_tgds = 0;
  if (!ParseBoundedFlag(args, "preds", 20, 1, 1u << 20, &preds) ||
      !ParseBoundedFlag(args, "arity", 5, 1, Schema::kMaxArity, &arity) ||
      !ParseU64Flag(args, "domain", 10'000, 1, UINT64_MAX, &domain) ||
      !ParseU64Flag(args, "tuples", 1'000, 0, UINT64_MAX, &tuples) ||
      !ParseU64Flag(args, "seed", 20230322, 0, UINT64_MAX, &seed) ||
      !ParseU64Flag(args, "tgds", 100, 0, UINT64_MAX, &num_tgds)) {
    return 2;
  }
  DataGenParams data_params;
  data_params.preds = preds;
  data_params.min_arity = 1;
  data_params.max_arity = arity;
  data_params.dsize = domain;
  data_params.rsize = tuples;
  data_params.seed = seed;
  auto data = GenerateData(data_params);
  if (!data.ok()) return Fail(data.status());

  TgdGenParams tgd_params;
  tgd_params.ssize = data_params.preds;
  tgd_params.min_arity = 1;
  tgd_params.max_arity = data_params.max_arity;
  tgd_params.tsize = num_tgds;
  tgd_params.tclass = args.Get("class", "l") == "sl"
                          ? TgdClass::kSimpleLinear
                          : TgdClass::kLinear;
  tgd_params.seed = data_params.seed + 1;
  auto tgds = GenerateTgds(*data->schema, tgd_params);
  if (!tgds.ok()) return Fail(tgds.status());

  Program program;
  program.schema = std::move(data->schema);
  program.database = std::move(data->database);
  program.tgds = std::move(tgds).value();
  if (Status status = SaveAnyProgram(program, args.positional[0]);
      !status.ok()) {
    return Fail(status);
  }
  std::cout << "wrote " << program.database->TotalFacts() << " facts and "
            << program.tgds.size() << " TGDs to " << args.positional[0]
            << "\n";
  return 0;
}

// ---------------------------------------------------------------------------
// explain

int CmdExplain(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: chasectl explain <file>   (simple-linear TGDs)\n";
    return 2;
  }
  auto program = LoadAnyProgram(args.positional[0]);
  if (!program.ok()) return Fail(program.status());
  auto witness = ExplainNonTerminationSL(*program->database, program->tgds);
  if (!witness.ok()) return Fail(witness.status());
  std::cout << "the semi-oblivious chase does not terminate; witness:\n"
            << FormatWitness(*program->schema, *witness, program->tgds);
  return 0;
}

// ---------------------------------------------------------------------------
// graph

int CmdGraph(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: chasectl graph <file> [--all-nodes] > dg.dot\n";
    return 2;
  }
  auto program = LoadAnyProgram(args.positional[0]);
  if (!program.ok()) return Fail(program.status());
  const DependencyGraph graph =
      BuildDependencyGraph(*program->schema, program->tgds);
  DotOptions options;
  options.skip_isolated_nodes = !args.Has("all-nodes");
  WriteDot(graph, std::cout, options);
  return 0;
}

// ---------------------------------------------------------------------------
// normalize

int CmdNormalize(const Args& args) {
  if (args.positional.size() < 2) {
    std::cerr << "usage: chasectl normalize <in> <out>\n";
    return 2;
  }
  auto program = LoadAnyProgram(args.positional[0]);
  if (!program.ok()) return Fail(program.status());
  auto normalized = NormalizeFrontiers(*program->database, program->tgds);
  if (!normalized.ok()) return Fail(normalized.status());
  Program out;
  out.schema = std::move(program->schema);
  out.database = std::move(normalized->database);
  out.tgds = std::move(normalized->tgds);
  if (Status status = SaveAnyProgram(out, args.positional[1]); !status.ok()) {
    return Fail(status);
  }
  std::cout << "normalized " << args.positional[0] << " -> "
            << args.positional[1] << " (materialized "
            << normalized->rules_materialized << " one-shot rule(s), dropped "
            << normalized->rules_dropped << " inapplicable)\n";
  return 0;
}

// ---------------------------------------------------------------------------
// convert

int CmdConvert(const Args& args) {
  if (args.positional.size() < 2) {
    std::cerr << "usage: chasectl convert <in> <out>\n";
    return 2;
  }
  auto program = LoadAnyProgram(args.positional[0]);
  if (!program.ok()) return Fail(program.status());
  if (Status status = SaveAnyProgram(*program, args.positional[1]);
      !status.ok()) {
    return Fail(status);
  }
  std::cout << "converted " << args.positional[0] << " -> "
            << args.positional[1] << "\n";
  return 0;
}

int Usage() {
  std::cerr <<
      "chasectl — semi-oblivious chase termination toolkit\n"
      "\n"
      "  chasectl check <file> [--mode=sl|l] [--shapes=mem|db|index] "
      "[--threads=N]\n"
      "  chasectl explain <file>               (non-termination witness)\n"
      "  chasectl chase <file> [--variant=so|ob|re] [--max-atoms=N] "
      "[--max-rounds=N] [--threads=N] [--checkpoint=FILE] "
      "[--checkpoint-every=N] [--resume=FILE] [--progress[=SECS]] "
      "[--metrics-interval=SECS] [--print]\n"
      "  chasectl simplify <file> [--mode=scan|exists|index] [--threads=N] "
      "[--print]\n"
      "  chasectl query <file> \"q(X) :- r(X, Y).\"\n"
      "  chasectl findshapes <file> [--backend=memory|disk|index] "
      "[--mode=scan|exists|index] [--threads=N] [--shards=N] "
      "[--pool-shards=N] [--prefetch=K] [--absorb=parallel|serial] "
      "[--snapshot=path.chidx] [--store=path.db] [--print]\n"
      "  chasectl index build <file> <out.chidx> [--backend=memory|disk] "
      "[--threads=N] [--shards=N]\n"
      "  chasectl index stat <snapshot.chidx>\n"
      "  chasectl stats <file>\n"
      "  chasectl zoo <file>\n"
      "  chasectl generate <out> [--preds=N] [--tgds=N] [--tuples=N] "
      "[--arity=N] [--class=sl|l] [--seed=N]\n"
      "  chasectl graph <file> [--all-nodes]   (Graphviz dot on stdout)\n"
      "  chasectl normalize <in> <out>         (eliminate empty frontiers)\n"
      "  chasectl convert <in> <out>\n"
      "\n"
      "Files ending in .chbin use the binary snapshot format, .chidx files\n"
      "are sharded-shape-index snapshots; everything else is Datalog± text\n"
      "(see README).\n"
      "\n"
      "check, chase, simplify, and findshapes also take --trace=FILE\n"
      "(Chrome trace-event JSON) and --metrics=FILE (metrics JSON); see\n"
      "README \"Observability\".\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) try {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Args args = Args::Parse(argc, argv, 2);
  if (command == "check") return CmdCheck(args);
  if (command == "explain") return CmdExplain(args);
  if (command == "chase") return CmdChase(args);
  if (command == "simplify") return CmdSimplify(args);
  if (command == "query") return CmdQuery(args);
  if (command == "findshapes") return CmdFindShapes(args);
  if (command == "index") return CmdIndex(args);
  if (command == "stats") return CmdStats(args);
  if (command == "zoo") return CmdZoo(args);
  if (command == "generate") return CmdGenerate(args);
  if (command == "graph") return CmdGraph(args);
  if (command == "normalize") return CmdNormalize(args);
  if (command == "convert") return CmdConvert(args);
  return Usage();
} catch (const std::exception& e) {
  // Backstop: a CLI must never die by uncaught exception (flag validation
  // above diagnoses the expected cases; anything that slips through still
  // exits 2 with the usage text instead of std::terminate).
  std::cerr << "error: " << e.what() << "\n";
  return Usage();
}
