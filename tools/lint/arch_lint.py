#!/usr/bin/env python3
"""arch_lint: whole-repo architecture analyzer for the chase codebase.

chase_lint.py polices spot patterns (determinism, parsing, spawning);
this tool polices structure. It parses every #include in src/, tools/,
tests/, and bench/ into a file-level include graph and enforces the
declared layer DAG of tools/lint/layers.toml:

  arch-cycle          No include cycles anywhere, at file granularity
                      (reported once per strongly connected component,
                      with the cycle path spelled out).

  layer-violation     Every cross-subsystem include edge must be allowed
                      by the manifest: a file under src/<sub>/ may only
                      include headers of <sub> itself and of the
                      subsystems listed for <sub> in layers.toml.
                      tools/, tests/, and bench/ are pseudo-subsystems
                      with their own entries ("*" = anything).

  transitive-include  No "lucky" includes: a file that uses a type,
                      function, macro, or alias declared in a src/
                      header it only reaches transitively must name that
                      header directly (mirrors chase_lint's own-header
                      member resolution). Heuristic: only identifiers
                      with exactly one declaring header among the file's
                      includes are checked, so ambiguous names never
                      fire. Scoped to src/ and tools/.

  missing-guard       Every header carries an include guard (#ifndef/
                      #define pair) or #pragma once.

  nodiscard-status    Status / StatusOr<T>-returning function
                      declarations in src/ headers carry [[nodiscard]]
                      (the class types are themselves [[nodiscard]];
                      the per-API annotation keeps the discipline
                      visible at the declaration and survives
                      by-reference wrappers). Enforced at compile time
                      repo-wide by -Werror=unused-result; this rule
                      keeps new declarations from shipping bare.

Suppressions: append `// arch-lint: allow(<rule>) <reason>` to the
offending line, or put it in a comment on the line directly above. The
reason is mandatory (a bare allow is itself a finding: bare-allow) —
it documents the invariant that replaces the rule. Cycles cannot be
suppressed: there is no line to hang a reason on that both sides of the
cycle would see.

Usage: arch_lint.py [--root DIR] [--manifest FILE] [paths...]
Paths default to `src tools tests bench` under --root (default: the
repo root inferred from this script's location). Directory walks skip
tests/lint/fixtures (known-bad lint snippets). Exits 0 when clean, 1
with file:line: diagnostics otherwise, 2 on usage/manifest errors.
"""

import argparse
import os
import re
import sys
import tomllib

CC_EXTENSIONS = (".h", ".cc", ".cpp")
HEADER_EXTENSIONS = (".h",)
FIXTURE_DIR_MARKER = os.path.join("tests", "lint", "fixtures")
TOP_DIRS = ("src", "tools", "tests", "bench")

SUPPRESS_RE = re.compile(r"//\s*arch-lint:\s*allow\(([\w-]+)\)\s*(.*)")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\b")
IFNDEF_RE = re.compile(r"^\s*#\s*ifndef\s+(\w+)")
DEFINE_RE = re.compile(r"^\s*#\s*define\s+(\w+)")

# Declared-name collection (transitive-include rule). Only namespace-scope
# declarations count; the scanner tracks brace depth and treats namespace
# braces as transparent.
NAMESPACE_RE = re.compile(r"\bnamespace\s+[\w:]*\s*\{")
CLASS_RE = re.compile(
    r"\b(?:class|struct)\s+(?:\[\[\w+\]\]\s+|\w+\([^)]*\)\s+|"
    r"SCOPED_CAPABILITY\s+)*([A-Z]\w*)")
ENUM_RE = re.compile(r"\benum\s+(?:class\s+|struct\s+)?([A-Z]\w*)")
USING_RE = re.compile(r"\busing\s+([A-Z]\w*)\s*=")
MACRO_RE = re.compile(r"^\s*#\s*define\s+([A-Z][A-Z0-9_]+)[\s(]")
# A free function: a declaration line whose name starts uppercase and is
# directly followed by '(' — `StatusOr<...> FindShapes(`, `Status Save(`.
FUNC_RE = re.compile(r"^[\w:<>,*&\s\[\]]*?[\s>&*]([A-Z]\w*)\s*\(")

# nodiscard-status rule: a header line declaring a function that returns
# Status / StatusOr by value. The name-followed-by-paren shape excludes
# locals like `Status status = Foo(...)`.
STATUS_DECL_RE = re.compile(
    r"^\s*(?:static\s+|virtual\s+|friend\s+|explicit\s+|inline\s+|"
    r"constexpr\s+)*(?:chase::)?(?:Status|StatusOr<[^;={()]*>)\s+"
    r"(\w+)\s*\(")
NODISCARD_RE = re.compile(r"\[\[nodiscard\]\]")


def strip_code_noise(line):
    """Removes // comments and blanks out string/char literal contents so
    code patterns don't match inside either (same heuristic as
    chase_lint; no multi-line strings exist in this codebase)."""
    out = []
    i = 0
    n = len(line)
    in_string = None
    while i < n:
        c = line[i]
        if in_string:
            if c == "\\":
                i += 2
                continue
            if c == in_string:
                in_string = None
                out.append(c)
            else:
                out.append(" ")
            i += 1
            continue
        if c in ('"', "'"):
            in_string = c
            out.append(c)
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            close = line.find("*/", i + 2)
            if close == -1:
                break
            i = close + 2
            continue
        out.append(c)
        i += 1
    return "".join(out)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def sort_key(self):
        return (self.path, self.line, self.rule, self.message)


class SourceFile:
    """One parsed translation unit / header: raw lines, noise-stripped
    code, resolved includes, suppressions."""

    def __init__(self, relpath, lines, root):
        self.relpath = relpath
        self.lines = lines
        self.code = [strip_code_noise(line) for line in lines]
        self.root = root
        self.includes = []  # (lineno, include_text, resolved_relpath|None)
        self.suppressions = {}
        self.bare_allows = []  # (lineno, rule)
        self._parse_includes()
        self._collect_suppressions()

    @property
    def subsystem(self):
        parts = self.relpath.split(os.sep)
        if parts[0] == "src" and len(parts) > 1:
            return parts[1]
        return parts[0]  # tools / tests / bench

    def _resolve(self, inc):
        """Resolution order mirrors the build: the including file's own
        directory (bench/common.h style), then the src/ include root,
        then the repo root."""
        candidates = [
            os.path.normpath(os.path.join(os.path.dirname(self.relpath),
                                          inc)),
            os.path.normpath(os.path.join("src", inc)),
            os.path.normpath(inc),
        ]
        for cand in candidates:
            if os.path.isfile(os.path.join(self.root, cand)):
                return cand
        return None

    def _parse_includes(self):
        # Raw lines, not noise-stripped code: stripping blanks string
        # literal contents, and the include path IS a string literal.
        for i, line in enumerate(self.lines, start=1):
            match = INCLUDE_RE.match(line)
            if match:
                inc = match.group(1)
                self.includes.append((i, inc, self._resolve(inc)))

    def _collect_suppressions(self):
        """Maps 1-based line number -> allowed rule ids; a comment-only
        suppression also covers the next code line (reason lines may wrap
        as further comment lines, which are skipped)."""
        for i, line in enumerate(self.lines, start=1):
            for match in SUPPRESS_RE.finditer(line):
                rule = match.group(1)
                reason = match.group(2).strip()
                if not reason:
                    self.bare_allows.append((i, rule))
                self.suppressions.setdefault(i, set()).add(rule)
                if line.lstrip().startswith("//"):
                    target = i + 1
                    while (target <= len(self.lines) and
                           self.lines[target - 1].lstrip().startswith("//")):
                        target += 1
                    self.suppressions.setdefault(target, set()).add(rule)

    def allowed(self, lineno, rule):
        return rule in self.suppressions.get(lineno, set())

    def declared_names(self):
        """Identifiers this file declares at namespace scope: classes,
        structs, enums (forward declarations count — they satisfy a
        pointer/reference use), using-aliases, macros, and free
        functions. Used both as the declaring-header inventory and as
        the uses-own-declaration filter."""
        names = set()
        depth = 0
        for code in self.code:
            if depth == 0:
                for regex in (CLASS_RE, ENUM_RE, USING_RE):
                    for match in regex.finditer(code):
                        names.add(match.group(1))
                func = FUNC_RE.match(code)
                if func:
                    names.add(func.group(1))
            match = MACRO_RE.match(code)
            if match:
                names.add(match.group(1))
            opens = code.count("{") - len(NAMESPACE_RE.findall(code))
            depth += opens - code.count("}")
            if depth < 0:
                depth = 0
        return names


def load_manifest(path):
    """Parses layers.toml: a [layers] table mapping subsystem name ->
    list of subsystems it may include (or "*"). Returns (layers, error).
    Every value must be a list of strings or the string "*"."""
    try:
        with open(path, "rb") as f:
            data = tomllib.load(f)
    except OSError as err:
        return None, f"cannot read manifest {path}: {err}"
    except tomllib.TOMLDecodeError as err:
        return None, f"manifest parse error in {path}: {err}"
    layers = data.get("layers")
    if not isinstance(layers, dict):
        return None, f"manifest {path} has no [layers] table"
    for name, deps in layers.items():
        if deps == "*":
            continue
        if (not isinstance(deps, list) or
                any(not isinstance(d, str) for d in deps)):
            return None, (f"manifest {path}: layers.{name} must be a list "
                          "of subsystem names or \"*\"")
        for dep in deps:
            if dep != "*" and dep not in layers:
                return None, (f"manifest {path}: layers.{name} allows "
                              f"unknown subsystem '{dep}'")
    return layers, None


def rel_to_root(path, root):
    try:
        return os.path.relpath(os.path.abspath(path), root)
    except ValueError:
        return path


def collect_files(paths, root):
    files = []
    for path in paths:
        if os.path.isfile(path):
            files.append(rel_to_root(path, root))
            continue
        if not os.path.isdir(path):
            print(f"arch_lint: no such path: {path}", file=sys.stderr)
            return None
        for dirpath, dirnames, filenames in os.walk(path):
            if FIXTURE_DIR_MARKER in rel_to_root(dirpath, root):
                dirnames[:] = []
                continue
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(CC_EXTENSIONS):
                    files.append(
                        rel_to_root(os.path.join(dirpath, name), root))
    return sorted(set(files))


class Analyzer:
    def __init__(self, root, layers, relpaths):
        self.root = root
        self.layers = layers
        self.files = {}
        self.findings = []
        for relpath in relpaths:
            try:
                with open(os.path.join(root, relpath), encoding="utf-8",
                          errors="replace") as f:
                    lines = f.read().splitlines()
            except OSError as err:
                self.findings.append(Finding(relpath, 0, "io-error",
                                             str(err)))
                continue
            self.files[relpath] = SourceFile(relpath, lines, root)
        # Pull transitively referenced repo files that were not listed
        # (a partial run must still see the full graph below its inputs).
        queue = list(self.files.values())
        while queue:
            sf = queue.pop()
            for _, _, resolved in sf.includes:
                if resolved is None or resolved in self.files:
                    continue
                try:
                    with open(os.path.join(root, resolved),
                              encoding="utf-8", errors="replace") as f:
                        lines = f.read().splitlines()
                except OSError:
                    continue
                self.files[resolved] = SourceFile(resolved, lines, root)
                queue.append(self.files[resolved])
        self.listed = set(relpaths)

    def report(self, sf, lineno, rule, message):
        if sf.allowed(lineno, rule):
            return
        self.findings.append(Finding(sf.relpath, lineno, rule, message))

    # -- rules ---------------------------------------------------------------

    def check_bare_allows(self):
        for sf in self.files.values():
            if sf.relpath not in self.listed:
                continue
            for lineno, rule in sf.bare_allows:
                self.findings.append(Finding(
                    sf.relpath, lineno, "bare-allow",
                    f"suppression allow({rule}) without a reason — state "
                    "the invariant that replaces the rule"))

    def check_guards(self):
        for sf in self.files.values():
            if sf.relpath not in self.listed:
                continue
            if not sf.relpath.endswith(HEADER_EXTENSIONS):
                continue
            guard_ok = False
            pending_guard = None
            for code in sf.code:
                if not code.strip():
                    continue
                if PRAGMA_ONCE_RE.match(code):
                    guard_ok = True
                    break
                ifndef = IFNDEF_RE.match(code)
                if ifndef and pending_guard is None:
                    pending_guard = ifndef.group(1)
                    continue
                define = DEFINE_RE.match(code)
                if (define and pending_guard is not None and
                        define.group(1) == pending_guard):
                    guard_ok = True
                break
            if not guard_ok:
                self.report(sf, 1, "missing-guard",
                            "header has neither an include guard "
                            "(#ifndef/#define pair) nor #pragma once")

    def check_cycles(self):
        """Tarjan SCC over the resolved include graph; every component
        with more than one file (or a self-include) is a cycle. Not
        suppressible — a cycle has no single owning line."""
        graph = {rel: sorted({resolved
                              for _, _, resolved in sf.includes
                              if resolved is not None})
                 for rel, sf in self.files.items()}
        index_of = {}
        lowlink = {}
        on_stack = set()
        stack = []
        counter = [0]
        sccs = []

        def strongconnect(v):
            # Iterative Tarjan: recursion depth could exceed the
            # interpreter limit on deep include chains.
            work = [(v, 0)]
            while work:
                node, pi = work[-1]
                if pi == 0:
                    index_of[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                succs = graph.get(node, [])
                while pi < len(succs):
                    succ = succs[pi]
                    pi += 1
                    if succ not in index_of:
                        work[-1] = (node, pi)
                        work.append((succ, 0))
                        recurse = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index_of[succ])
                if recurse:
                    continue
                if lowlink[node] == index_of[node]:
                    scc = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        scc.append(w)
                        if w == node:
                            break
                    sccs.append(sorted(scc))
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])

        for v in sorted(graph):
            if v not in index_of:
                strongconnect(v)

        for scc in sorted(sccs):
            self_loop = (len(scc) == 1 and scc[0] in graph.get(scc[0], []))
            if len(scc) < 2 and not self_loop:
                continue
            head = scc[0]
            path = " -> ".join(scc + [head])
            self.findings.append(Finding(
                head, 1, "arch-cycle",
                f"include cycle among {len(scc)} file(s): {path}"))

    def check_layers(self):
        for sf in self.files.values():
            if sf.relpath not in self.listed:
                continue
            sub = sf.subsystem
            allowed = self.layers.get(sub)
            if allowed is None:
                self.report(sf, 1, "layer-violation",
                            f"subsystem '{sub}' is not declared in the "
                            "layer manifest (tools/lint/layers.toml)")
                continue
            if allowed == "*" or "*" in allowed:
                continue
            for lineno, inc, resolved in sf.includes:
                if resolved is None:
                    continue
                target = self.files.get(resolved)
                tsub = (target.subsystem if target is not None
                        else resolved.split(os.sep)[0])
                if tsub == sub or tsub in allowed:
                    continue
                self.report(
                    sf, lineno, "layer-violation",
                    f"'{sub}' may not include '{inc}' (subsystem "
                    f"'{tsub}'); allowed: {', '.join(sorted(allowed))} — "
                    "fix the layering or amend tools/lint/layers.toml")

    def check_transitive_includes(self):
        """A file using an identifier whose only declaring header among
        its transitive includes is one it never names directly relies on
        a lucky include chain."""
        decls = {rel: sf.declared_names()
                 for rel, sf in self.files.items()
                 if rel.startswith("src" + os.sep) and rel.endswith(".h")}
        closure_cache = {}

        def closure(rel):
            if rel in closure_cache:
                return closure_cache[rel]
            seen = set()
            queue = [rel]
            while queue:
                node = queue.pop()
                sf = self.files.get(node)
                if sf is None:
                    continue
                for _, _, resolved in sf.includes:
                    if resolved is not None and resolved not in seen:
                        seen.add(resolved)
                        queue.append(resolved)
            closure_cache[rel] = seen
            return seen

        for sf in self.files.values():
            if sf.relpath not in self.listed:
                continue
            if not (sf.relpath.startswith("src" + os.sep) or
                    sf.relpath.startswith("tools" + os.sep)):
                continue
            direct = {resolved for _, _, resolved in sf.includes
                      if resolved is not None}
            trans = closure(sf.relpath) - direct - {sf.relpath}
            trans_headers = [h for h in sorted(trans) if h in decls]
            if not trans_headers:
                continue
            # An identifier is checked only when exactly one header in
            # the whole closure declares it (ambiguous names never fire)
            # and the file does not declare it itself.
            declarer = {}
            for header in sorted(closure(sf.relpath) | direct):
                for name in decls.get(header, ()):
                    declarer[name] = (None if name in declarer
                                      else header)
            own = sf.declared_names()
            candidates = {}
            for header in trans_headers:
                for name in decls[header]:
                    if declarer.get(name) == header and name not in own:
                        candidates[name] = header
            if not candidates:
                continue
            pattern = re.compile(
                r"\b(?:" + "|".join(
                    re.escape(n) for n in sorted(candidates)) + r")\b")
            reported = set()
            for i, code in enumerate(sf.code, start=1):
                if INCLUDE_RE.match(code):
                    continue
                for match in pattern.finditer(code):
                    name = match.group(0)
                    if name in reported:
                        continue
                    reported.add(name)
                    header = candidates[name].replace(os.sep, "/")
                    rel_header = (header[4:] if header.startswith("src/")
                                  else header)
                    self.report(
                        sf, i, "transitive-include",
                        f"uses '{name}' declared in {header} without "
                        f"including it directly — add #include "
                        f"\"{rel_header}\"")

    def check_nodiscard(self):
        for sf in self.files.values():
            if sf.relpath not in self.listed:
                continue
            if not (sf.relpath.startswith("src" + os.sep) and
                    sf.relpath.endswith(".h")):
                continue
            for i, code in enumerate(sf.code, start=1):
                match = STATUS_DECL_RE.match(code)
                if not match:
                    continue
                if "return" in code or "using" in code:
                    continue
                if NODISCARD_RE.search(code):
                    continue
                if i > 1 and NODISCARD_RE.search(sf.code[i - 2]):
                    continue
                self.report(
                    sf, i, "nodiscard-status",
                    f"'{match.group(1)}' returns Status/StatusOr without "
                    "[[nodiscard]]; annotate the declaration so dropped "
                    "errors fail the build")

    def run(self):
        self.check_bare_allows()
        self.check_guards()
        self.check_cycles()
        self.check_layers()
        self.check_transitive_includes()
        self.check_nodiscard()
        self.findings.sort(key=Finding.sort_key)
        return self.findings


def main(argv):
    parser = argparse.ArgumentParser(
        prog="arch_lint.py",
        description="architecture analyzer (see the module docstring)")
    parser.add_argument("--root", default=None,
                        help="repo root for rule scoping (default: "
                        "inferred from this script's location)")
    parser.add_argument("--manifest", default=None,
                        help="layer manifest (default: "
                        "<root>/tools/lint/layers.toml)")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src tools "
                        "tests bench under the root)")
    args = parser.parse_args(argv)

    root = os.path.abspath(
        args.root if args.root is not None
        else os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "..", ".."))
    manifest_path = (args.manifest if args.manifest is not None
                     else os.path.join(root, "tools", "lint", "layers.toml"))
    layers, error = load_manifest(manifest_path)
    if error is not None:
        print(f"arch_lint: {error}", file=sys.stderr)
        return 2

    paths = args.paths or [os.path.join(root, d) for d in TOP_DIRS
                           if os.path.isdir(os.path.join(root, d))]
    relpaths = collect_files(paths, root)
    if relpaths is None:
        return 2

    findings = Analyzer(root, layers, relpaths).run()
    for finding in findings:
        print(finding)
    if findings:
        print(f"arch_lint: {len(findings)} finding(s) in "
              f"{len(relpaths)} file(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
