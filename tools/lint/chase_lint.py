#!/usr/bin/env python3
"""chase_lint: repo-invariant linter for the chase-termination codebase.

The differential test harness can only *sample* the determinism contract
(bit-identical output at any thread count); this linter enforces the source
patterns that protect it, on every file, in CI:

  unordered-iter   Range-for over a std::unordered_{map,set} in a
                   canonical-output path (src/core/, src/chase/,
                   src/index/). Hash-table iteration order is
                   implementation-defined, so every such loop must either
                   sort before emitting or be a commutative fold — and must
                   say so in a suppression comment. Locals bound through
                   `auto` (`auto& live = shards_;`) inherit the container's
                   unordered-ness, resolved to a fixpoint.

  banned-nondet    Nondeterminism sources outside the sanctioned homes
                   (src/base/rng.h, src/base/hash.h): rand/srand,
                   std::random_device, std::mt19937, std::hash of a pointer
                   type, and reinterpret_cast<[u]intptr_t> (pointer-valued
                   ordering keys change run to run under ASLR).

  raw-sto          std::sto* / ato* conversions. They throw (or worse,
                   silently truncate) on garbage; all flag/string parsing
                   goes through a validated parser (see chasectl's
                   ParseU64Flag: strtoull + errno + end-pointer checks).

  naked-thread     std::thread creation outside the sanctioned spawners
                   (WorkerPool in src/exec/frontier_pool, Prefetcher in
                   src/pager/prefetcher, ProgressReporter/MetricsDumper in
                   src/obs/progress). One pool, one read-ahead crew, one
                   reporter tick — nothing else spawns.

  envelope-io      Binary envelope magics ("CHBN", "CHSI", "CHCK") outside
                   src/io/binary_io.{h,cc}. Envelope bytes are written only
                   through the io/binary_io helpers so the
                   checksum/version/limits discipline cannot be bypassed.

  signal-handler   Signal-handler discipline. Two checks: (a) handler
                   registration (signal()/sigaction()) outside the
                   sanctioned shim src/base/signal_flag.{h,cc} — the
                   checkpoint protocol owns SIGUSR1/SIGTERM and a second
                   registrar would silently steal them; (b) inside any
                   handler function body, calls that are not
                   async-signal-safe: heap allocation, locking, stdio and
                   iostreams. A conforming handler is a single store to a
                   lock-free std::atomic, nothing more.

Suppressions: append `// chase-lint: allow(<rule>) <reason>` to the
offending line, or put it in a comment on the line directly above. The
reason is mandatory — a suppression documents the invariant that replaces
the rule (e.g. "sorted before emit below").

Usage: chase_lint.py [--root DIR] [paths...]
Paths default to `src tools tests` under --root (default: the repo root
inferred from this script's location). Directory walks skip
tests/lint/fixtures (the lint test's known-bad snippets); explicitly
listed files are always linted. Exits 0 when clean, 1 with
file:line: diagnostics otherwise, 2 on usage errors.
"""

import argparse
import os
import re
import sys

CC_EXTENSIONS = (".h", ".cc", ".cpp")
FIXTURE_DIR_MARKER = os.path.join("tests", "lint", "fixtures")

SUPPRESS_RE = re.compile(r"//\s*chase-lint:\s*allow\(([\w-]+)\)\s*(.*)")

# unordered-iter ------------------------------------------------------------
CANONICAL_DIRS = (
    os.path.join("src", "core"),
    os.path.join("src", "chase"),
    os.path.join("src", "index"),
)
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set)\s*<[^;{}]*>\s+(\w+)")
UNORDERED_ALIAS_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*(?:std::)?unordered_(?:map|set)\b")
# `auto` locals bound to another object (by value, reference, or
# dereference) — if the initializer resolves to a known unordered
# container, the local inherits its unordered-ness; see unordered_names().
UNORDERED_AUTO_RE = re.compile(
    r"\b(?:const\s+)?auto\s*(?:&&?|\*)?\s*(\w+)\s*=\s*([^;={}]+);")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;()]*?:\s*([^)]+)\)")
TRAILING_IDENT_RE = re.compile(r"(\w+)\s*$")

# banned-nondet -------------------------------------------------------------
NONDET_HOMES = (
    os.path.join("src", "base", "rng.h"),
    os.path.join("src", "base", "hash.h"),
)
NONDET_PATTERNS = (
    (re.compile(r"\b(?:std::)?s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(?:_64)?\b"), "std::mt19937"),
    (re.compile(r"\bstd::hash\s*<[^>]*\*\s*>"), "std::hash of a pointer"),
    (re.compile(r"\breinterpret_cast\s*<\s*(?:std::)?u?intptr_t\b"),
     "pointer-to-integer cast (ASLR-dependent value)"),
)

# raw-sto -------------------------------------------------------------------
RAW_STO_RE = re.compile(r"\b(?:std::sto(?:i|l|ll|ul|ull|f|d|ld)"
                        r"|ato(?:i|l|ll|f))\s*\(")

# naked-thread --------------------------------------------------------------
THREAD_SPAWNERS = (
    os.path.join("src", "exec", "frontier_pool.h"),
    os.path.join("src", "exec", "frontier_pool.cc"),
    os.path.join("src", "pager", "prefetcher.h"),
    os.path.join("src", "pager", "prefetcher.cc"),
    os.path.join("src", "obs", "progress.h"),
    os.path.join("src", "obs", "progress.cc"),
)
THREAD_RE = re.compile(r"\bstd::thread\b")
# Tests and examples drive concurrency scenarios directly; the spawn rule
# polices the library and tools.
THREAD_SCOPE = (os.path.join("src", ""), os.path.join("tools", ""))

# envelope-io ---------------------------------------------------------------
ENVELOPE_HOME = (
    os.path.join("src", "io", "binary_io.h"),
    os.path.join("src", "io", "binary_io.cc"),
)
MAGIC_RE = re.compile(r'"CH(?:BN|SI|CK)"')

# signal-handler ------------------------------------------------------------
SIGNAL_HOME = (
    os.path.join("src", "base", "signal_flag.h"),
    os.path.join("src", "base", "signal_flag.cc"),
)
SIGNAL_REGISTER_RE = re.compile(r"\b(?:std::)?(?:signal|sigaction)\s*\(")
# Handler names: assigned into sigaction::sa_handler or passed to signal().
HANDLER_ASSIGN_RE = re.compile(
    r"(?:\bsa_handler\s*=\s*|\bsignal\s*\(\s*\w+\s*,\s*)&?(\w+)")
# ...or defined with a handler-shaped name and signature.
HANDLER_DEF_NAME_RE = re.compile(
    r"\bvoid\s+(\w*[Hh]andler\w*)\s*\(\s*int\b")
UNSAFE_IN_HANDLER = (
    (re.compile(r"\b(?:malloc|calloc|realloc|free)\s*\("),
     "heap allocation"),
    (re.compile(r"\bnew\b"), "heap allocation (new)"),
    (re.compile(r"\b(?:f?printf|puts|fputs|fopen|fwrite|fflush|fclose)"
                r"\s*\("), "stdio"),
    (re.compile(r"\bstd::c(?:out|err|log)\b"), "iostream"),
    (re.compile(r"\.lock\s*\(|\b[Mm]utex\b"), "locking"),
)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return (f"{self.path}:{self.line}: [{self.rule}] {self.message}")


def strip_code_noise(line):
    """Removes // comments and blanks out string/char literal contents so
    code patterns don't match inside either. Heuristic (no multi-line
    strings), which is all this codebase uses."""
    out = []
    i = 0
    n = len(line)
    in_string = None
    while i < n:
        c = line[i]
        if in_string:
            if c == "\\":
                i += 2
                continue
            if c == in_string:
                in_string = None
                out.append(c)
            else:
                out.append(" ")  # blank literal contents
            i += 1
            continue
        if c in ('"', "'"):
            in_string = c
            out.append(c)
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # rest is comment
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            # Block comments are rare here; blank to the close or EOL.
            close = line.find("*/", i + 2)
            if close == -1:
                break
            i = close + 2
            continue
        out.append(c)
        i += 1
    return "".join(out)


def rel_to_root(path, root):
    try:
        return os.path.relpath(os.path.abspath(path), root)
    except ValueError:
        return path


def in_dirs(relpath, prefixes):
    return any(relpath == p.rstrip(os.sep) or relpath.startswith(p)
               for p in (q if q.endswith(os.sep) else q + os.sep
                         for q in prefixes))


class FileLinter:
    def __init__(self, path, relpath, lines, header_code=()):
        self.path = path
        self.relpath = relpath
        self.lines = lines
        # code[i] is lines[i] with comments and literal contents blanked;
        # raw strings are kept for the envelope-io rule and suppressions.
        self.code = [strip_code_noise(line) for line in lines]
        # Noise-stripped lines of the file's own quoted includes — a .cc's
        # unordered members are declared in its header, so name collection
        # must see both.
        self.header_code = list(header_code)
        self.suppressions = self._collect_suppressions()
        self.findings = []

    def _collect_suppressions(self):
        """Maps 1-based line number -> set of allowed rule ids. A
        suppression comment covers its own line and, when the rest of the
        line is only the comment, the next code line — the reason may wrap
        onto continuation comment lines, which are skipped over."""
        allowed = {}
        for i, line in enumerate(self.lines, start=1):
            for match in SUPPRESS_RE.finditer(line):
                rule = match.group(1)
                reason = match.group(2).strip()
                if not reason:
                    self.findings = getattr(self, "findings", [])
                    allowed.setdefault(-i, set()).add(rule)  # marker
                allowed.setdefault(i, set()).add(rule)
                if line.lstrip().startswith("//"):
                    target = i + 1
                    while (target <= len(self.lines) and
                           self.lines[target - 1].lstrip().startswith("//")):
                        target += 1
                    allowed.setdefault(target, set()).add(rule)
        return allowed

    def allowed(self, lineno, rule):
        return rule in self.suppressions.get(lineno, set())

    def report(self, lineno, rule, message):
        if self.allowed(lineno, rule):
            return
        self.findings.append(Finding(self.relpath, lineno, rule, message))

    def check_reasonless_suppressions(self):
        for neg, rules in self.suppressions.items():
            if neg >= 0:
                continue
            lineno = -neg
            for rule in rules:
                self.findings.append(Finding(
                    self.relpath, lineno, "bare-allow",
                    f"suppression allow({rule}) without a reason — state "
                    "the invariant that replaces the rule"))

    # -- rules --------------------------------------------------------------

    def unordered_names(self):
        names = set()
        aliases = set()
        decl_sources = self.code + self.header_code
        for code in decl_sources:
            for match in UNORDERED_ALIAS_RE.finditer(code):
                aliases.add(match.group(1))
            for match in UNORDERED_DECL_RE.finditer(code):
                names.add(match.group(1))
        if aliases:
            alias_decl = re.compile(
                r"\b(?:" + "|".join(re.escape(a) for a in aliases) +
                r")\s*&?\s+(\w+)")
            for code in decl_sources:
                for match in alias_decl.finditer(code):
                    names.add(match.group(1))
        # An `auto` local bound to an unordered container is the same hash
        # table under a new name — `auto& live = shards_;` then range-for
        # over `live` is exactly as order-unstable as iterating shards_
        # directly. The initializer's trailing identifier is resolved the
        # same way the range expression is, and the set is closed to a
        # fixpoint so chained rebinds (`auto& a = m; auto& b = a;`)
        # propagate.
        changed = True
        while changed:
            changed = False
            for code in decl_sources:
                for match in UNORDERED_AUTO_RE.finditer(code):
                    new_name, init = match.group(1), match.group(2)
                    source = TRAILING_IDENT_RE.search(init.strip())
                    if (source and source.group(1) in names
                            and new_name not in names):
                        names.add(new_name)
                        changed = True
        return names

    def check_unordered_iter(self):
        if not in_dirs(self.relpath, CANONICAL_DIRS):
            return
        names = self.unordered_names()
        if not names:
            return
        for i, code in enumerate(self.code, start=1):
            for match in RANGE_FOR_RE.finditer(code):
                range_expr = match.group(1).strip()
                ident = TRAILING_IDENT_RE.search(range_expr)
                if ident and ident.group(1) in names:
                    self.report(
                        i, "unordered-iter",
                        f"iteration over unordered container "
                        f"'{ident.group(1)}' in a canonical-output path; "
                        "sort before emit (or document the commutative "
                        "fold) and add "
                        "`// chase-lint: allow(unordered-iter) <why>`")

    def check_banned_nondet(self):
        if self.relpath in NONDET_HOMES:
            return
        if not in_dirs(self.relpath, ("src", "tools")):
            return
        for i, code in enumerate(self.code, start=1):
            for pattern, what in NONDET_PATTERNS:
                if pattern.search(code):
                    self.report(
                        i, "banned-nondet",
                        f"{what} outside src/base/rng.h / src/base/hash.h; "
                        "deterministic runs require the sanctioned "
                        "SplitMix64/xoshiro paths")

    def check_raw_sto(self):
        for i, code in enumerate(self.code, start=1):
            if RAW_STO_RE.search(code):
                self.report(
                    i, "raw-sto",
                    "raw string-to-number conversion; use a validated "
                    "parser (strtoull + errno/end checks, cf. chasectl "
                    "ParseU64Flag) so garbage is a diagnosed failure")

    def check_naked_thread(self):
        if self.relpath in THREAD_SPAWNERS:
            return
        if not in_dirs(self.relpath, ("src", "tools")):
            return
        for i, code in enumerate(self.code, start=1):
            if THREAD_RE.search(code):
                self.report(
                    i, "naked-thread",
                    "std::thread outside the sanctioned spawners "
                    "(WorkerPool, Prefetcher, ProgressReporter/"
                    "MetricsDumper); run work on a WorkerPool")

    def check_envelope_io(self):
        if self.relpath in ENVELOPE_HOME:
            return
        for i, line in enumerate(self.lines, start=1):
            code_with_strings = strip_comment_only(line)
            if MAGIC_RE.search(code_with_strings):
                self.report(
                    i, "envelope-io",
                    "binary envelope magic outside io/binary_io; write "
                    "envelopes only through the io/binary_io helpers")

    def _handler_names(self):
        names = set()
        for code in self.code:
            for match in HANDLER_ASSIGN_RE.finditer(code):
                name = match.group(1)
                if not name.startswith("SIG_"):  # SIG_IGN / SIG_DFL
                    names.add(name)
            for match in HANDLER_DEF_NAME_RE.finditer(code):
                names.add(match.group(1))
        return names

    def check_signal_handler(self):
        if not in_dirs(self.relpath, ("src", "tools")):
            return
        if self.relpath not in SIGNAL_HOME:
            for i, code in enumerate(self.code, start=1):
                if SIGNAL_REGISTER_RE.search(code):
                    self.report(
                        i, "signal-handler",
                        "signal()/sigaction() outside the sanctioned shim "
                        "(src/base/signal_flag); the checkpoint protocol "
                        "owns SIGUSR1/SIGTERM — register through "
                        "ScopedSignalFlags")
        # Scan every identified handler body — including the shim's own —
        # for calls that are not async-signal-safe.
        names = self._handler_names()
        if not names:
            return
        def_res = {name: re.compile(rf"\bvoid\s+{re.escape(name)}\s*\(")
                   for name in names}
        for name, def_re in sorted(def_res.items()):
            start = None
            for i, code in enumerate(self.code):
                # A definition opens a brace on this line or the next; a
                # declaration/assignment ends with ';'.
                if def_re.search(code) and ";" not in code:
                    start = i
                    break
            if start is None:
                continue
            depth = 0
            opened = False
            for i in range(start, len(self.code)):
                code = self.code[i]
                if opened and depth > 0:
                    for pattern, what in UNSAFE_IN_HANDLER:
                        if pattern.search(code):
                            self.report(
                                i + 1, "signal-handler",
                                f"{what} inside signal handler '{name}'; "
                                "handlers may only store to a lock-free "
                                "std::atomic flag")
                depth += code.count("{") - code.count("}")
                if "{" in code:
                    opened = True
                if opened and depth <= 0:
                    break

    def run(self):
        self.check_reasonless_suppressions()
        self.check_unordered_iter()
        self.check_banned_nondet()
        self.check_raw_sto()
        self.check_naked_thread()
        self.check_envelope_io()
        self.check_signal_handler()
        return self.findings


def strip_comment_only(line):
    """Removes // comments but keeps string literal contents (for rules
    that match inside literals)."""
    i = 0
    n = len(line)
    in_string = None
    while i < n:
        c = line[i]
        if in_string:
            if c == "\\":
                i += 2
                continue
            if c == in_string:
                in_string = None
            i += 1
            continue
        if c in ('"', "'"):
            in_string = c
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            return line[:i]
        i += 1
    return line


INCLUDE_RE = re.compile(r'#include\s+"([^"]+)"')


def own_header_code(lines, root):
    """Noise-stripped lines of the file's quoted includes that resolve
    under <root>/src — where a .cc's class members are declared."""
    code = []
    for line in lines:
        match = INCLUDE_RE.match(line.strip())
        if not match:
            continue
        header = os.path.join(root, "src", match.group(1))
        if not os.path.isfile(header):
            continue
        try:
            with open(header, encoding="utf-8", errors="replace") as f:
                code.extend(strip_code_noise(l) for l in
                            f.read().splitlines())
        except OSError:
            continue
    return code


def lint_file(path, root):
    relpath = rel_to_root(path, root)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as err:
        print(f"chase_lint: cannot read {path}: {err}", file=sys.stderr)
        return [Finding(relpath, 0, "io-error", str(err))]
    header_code = ()
    if path.endswith((".cc", ".cpp")) and in_dirs(relpath, CANONICAL_DIRS):
        header_code = own_header_code(lines, root)
    return FileLinter(path, relpath, lines, header_code).run()


def collect_files(paths, root):
    files = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)  # explicit files are always linted
            continue
        if not os.path.isdir(path):
            print(f"chase_lint: no such path: {path}", file=sys.stderr)
            return None
        for dirpath, dirnames, filenames in os.walk(path):
            if FIXTURE_DIR_MARKER in rel_to_root(dirpath, root):
                dirnames[:] = []
                continue
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(CC_EXTENSIONS):
                    files.append(os.path.join(dirpath, name))
    return files


def main(argv):
    parser = argparse.ArgumentParser(
        prog="chase_lint.py",
        description="repo-invariant linter (see the module docstring)")
    parser.add_argument("--root", default=None,
                        help="repo root for rule scoping (default: "
                        "inferred from this script's location)")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src tools "
                        "tests under the root)")
    args = parser.parse_args(argv)

    root = os.path.abspath(
        args.root if args.root is not None
        else os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "..", ".."))
    paths = args.paths or [
        os.path.join(root, d) for d in ("src", "tools", "tests")]

    files = collect_files(paths, root)
    if files is None:
        return 2
    findings = []
    for path in files:
        findings.extend(lint_file(path, root))
    for finding in findings:
        print(finding)
    if findings:
        print(f"chase_lint: {len(findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
